//! Named counters, gauges and fixed-bucket histograms with deterministic
//! text / JSON exporters.

use crate::event::{json_f64, json_string};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default bucket upper bounds for transfer-latency histograms, in seconds.
///
/// Chosen to straddle the paper's measured range: LAN replicas finish in a
/// few seconds, the 30 Mbps Li-Zen uplink takes minutes for the large
/// files.
pub const LATENCY_BOUNDS_SECS: &[f64] =
    &[0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0];

/// A fixed-bucket histogram with cumulative-friendly `value <= bound`
/// bucketing (values exactly on a boundary land in that boundary's bucket).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `buckets[i]` counts observations in `(bounds[i-1], bounds[i]]`;
    /// the final slot counts everything above the last bound.
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over the given upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, non-finite, or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[slot] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The configured upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; one slot longer than [`Histogram::bounds`], the
    /// extra final slot being the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// inside the bucket holding the target rank, clamped to the observed
    /// `[min, max]` range. Deterministic: a pure function of the bucket
    /// counts. Returns `None` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &bucket) in self.buckets.iter().enumerate() {
            let before = cumulative;
            cumulative += bucket;
            if bucket == 0 || cumulative < rank {
                continue;
            }
            let lower = if i == 0 { self.min } else { self.bounds[i - 1] };
            let upper = if i < self.bounds.len() {
                self.bounds[i]
            } else {
                self.max
            };
            let fraction = (rank - before) as f64 / bucket as f64;
            let estimate = lower + (upper - lower) * fraction;
            return Some(estimate.clamp(self.min, self.max));
        }
        // Unreachable: cumulative over all buckets equals `count >= rank`.
        Some(self.max)
    }
}

/// Registry of named metrics, exported in sorted-name order so two
/// identical runs render byte-identical dumps.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increment a counter by one (creating it at zero first).
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increment a counter by `delta` (creating it at zero first).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current counter value (zero when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Overwrite a counter with an externally maintained total — used when
    /// merging counters kept by other subsystems (engine, catalog) into a
    /// snapshot.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Set a gauge to an instantaneous value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Current gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Create (or fetch) a histogram with explicit bounds.
    ///
    /// Bounds are fixed on first registration; re-registering with
    /// different bounds keeps the original.
    pub fn register_histogram(&mut self, name: &str, bounds: &[f64]) -> &mut Histogram {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
    }

    /// Record an observation, creating the histogram with
    /// [`LATENCY_BOUNDS_SECS`] if it does not exist yet.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.register_histogram(name, LATENCY_BOUNDS_SECS)
            .observe(value);
    }

    /// Fetch a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Deterministic plain-text export (one metric per line, names sorted).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("# counters\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "{name} {value}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("# gauges\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "{name} {value}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("# histograms\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{name} count {} sum {} min {} max {}",
                    h.count,
                    h.sum,
                    h.min().map_or_else(|| "-".to_string(), |v| v.to_string()),
                    h.max().map_or_else(|| "-".to_string(), |v| v.to_string()),
                );
                let mut cumulative = 0u64;
                for (bound, bucket) in h.bounds.iter().zip(&h.buckets) {
                    cumulative += bucket;
                    let _ = writeln!(out, "{name} le {bound} {cumulative}");
                }
                cumulative += h.buckets[h.bounds.len()];
                let _ = writeln!(out, "{name} le +inf {cumulative}");
            }
        }
        out
    }

    /// Deterministic JSON export (single object, names sorted).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(name), value);
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(name), json_f64(*value));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let bounds: Vec<String> = h.bounds.iter().map(|b| json_f64(*b)).collect();
            let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
            let _ = write!(
                out,
                "{}:{{\"bounds\":[{}],\"buckets\":[{}],\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                json_string(name),
                bounds.join(","),
                buckets.join(","),
                h.count,
                json_f64(h.sum),
                h.min().map_or_else(|| "null".to_string(), json_f64),
                h.max().map_or_else(|| "null".to_string(), json_f64),
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_values_land_in_the_le_bucket() {
        let mut h = Histogram::new(&[1.0, 2.0, 5.0]);
        // Exactly on a bound -> that bucket (le semantics).
        h.observe(1.0);
        h.observe(2.0);
        h.observe(5.0);
        assert_eq!(h.bucket_counts(), &[1, 1, 1, 0]);
        // Just above a bound -> next bucket; above the last -> overflow.
        h.observe(1.0000001);
        h.observe(5.0000001);
        assert_eq!(h.bucket_counts(), &[1, 2, 1, 1]);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn extremes_and_empty_histograms() {
        let mut h = Histogram::new(&[10.0]);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        h.observe(0.0);
        h.observe(-3.5);
        h.observe(1e12);
        assert_eq!(h.bucket_counts(), &[2, 1]);
        assert_eq!(h.min(), Some(-3.5));
        assert_eq!(h.max(), Some(1e12));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        Histogram::new(&[1.0, 1.0]);
    }

    #[test]
    fn registry_renders_sorted_and_stable() {
        let build = || {
            let mut m = MetricsRegistry::new();
            m.inc("zeta.count");
            m.add("alpha.count", 2);
            m.set_gauge("mid.gauge", 0.25);
            m.register_histogram("lat", &[1.0, 10.0]);
            m.observe("lat", 0.5);
            m.observe("lat", 10.0);
            m.observe("lat", 11.0);
            m
        };
        let a = build();
        let b = build();
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.render_json(), b.render_json());
        let text = a.render_text();
        let alpha_pos = text.find("alpha.count 2").expect("alpha line");
        let zeta_pos = text.find("zeta.count 1").expect("zeta line");
        assert!(alpha_pos < zeta_pos, "counters sorted by name");
        assert!(text.contains("lat le 10 2"), "cumulative at bound:\n{text}");
        assert!(text.contains("lat le +inf 3"));
        assert!(a.render_json().starts_with("{\"counters\":{"));
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = Histogram::new(&[1.0, 2.0, 5.0]);
        assert_eq!(h.quantile(0.5), None);
        for v in [0.5, 1.5, 1.6, 1.7, 4.0, 9.0] {
            h.observe(v);
        }
        let p50 = h.quantile(0.5).expect("non-empty");
        assert!((1.0..=2.0).contains(&p50), "median in (1,2], got {p50}");
        let p99 = h.quantile(0.99).expect("non-empty");
        assert!(p99 > 5.0, "p99 in the overflow bucket, got {p99}");
        assert!(p99 <= 9.0, "clamped to observed max, got {p99}");
        let p0 = h.quantile(0.0).expect("non-empty");
        assert!(p0 >= 0.5, "clamped to observed min, got {p0}");
        // Single observation: every quantile is that value.
        let mut one = Histogram::new(&[10.0]);
        one.observe(3.0);
        assert_eq!(one.quantile(0.5), Some(3.0));
        assert_eq!(one.quantile(1.0), Some(3.0));
    }

    #[test]
    fn observe_uses_default_latency_bounds() {
        let mut m = MetricsRegistry::new();
        m.observe("transfer.seconds", 3.0);
        let h = m.histogram("transfer.seconds").expect("created");
        assert_eq!(h.bounds(), LATENCY_BOUNDS_SECS);
        assert_eq!(h.count(), 1);
    }
}
