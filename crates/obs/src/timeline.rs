//! Sim-time windowed health timelines.
//!
//! A [`TimelineRecorder`] folds the continuous life of a grid run into
//! fixed-width simulation-time windows: per-link utilization (average and
//! peak), active-flow counts, fetch-latency percentiles (derived from the
//! same fixed histogram buckets the metrics registry uses), selection
//! decisions per second, failovers, retries, faults and job completions.
//! This is the "watching the grid" half of the paper's argument — the
//! NWS-style sampled history that replica selection reasons over — turned
//! into a first-class export.
//!
//! Determinism contract: windows are keyed by `floor(t / window)` on the
//! simulated clock, samples arrive in nondecreasing sim-time order, and
//! every export iterates windows and links in index order with plain
//! decimal formatting. Two identically-seeded runs render byte-identical
//! timelines; that property is covered by `tests/timeline_determinism.rs`.

use crate::event::{json_f64, json_string};
use crate::metrics::{Histogram, LATENCY_BOUNDS_SECS};
use datagrid_simnet::time::{SimDuration, SimTime};
use std::fmt::Write as _;

/// Peak utilization at or above this fraction counts a window as
/// "saturated" for the link in the health report.
pub const SATURATION_THRESHOLD: f64 = 0.999;

/// Default number of hottest links surfaced per window and per run.
pub const DEFAULT_TOP_K: usize = 3;

/// One fixed sim-time window of aggregated samples.
#[derive(Debug, Clone)]
struct WindowAgg {
    /// Window ordinal: `floor(t / window)`.
    index: u64,
    /// Network samples folded into this window.
    samples: u64,
    /// Per-link utilization sums (divide by `samples` for the average).
    util_sum: Vec<f64>,
    /// Per-link utilization peaks.
    util_peak: Vec<f64>,
    /// Sum of active-flow counts across samples.
    flows_sum: u64,
    /// Peak active-flow count.
    flows_peak: u64,
    decisions: u64,
    failovers: u64,
    retries: u64,
    faults: u64,
    completions: u64,
    failures: u64,
    /// Max-min solver invocations attributed to this window.
    solves: u64,
    /// Flows touched by those solves.
    solver_flows: u64,
    /// Fetch latencies completed in this window.
    latency: Histogram,
}

impl WindowAgg {
    fn new(index: u64, links: usize) -> Self {
        WindowAgg {
            index,
            samples: 0,
            util_sum: vec![0.0; links],
            util_peak: vec![0.0; links],
            flows_sum: 0,
            flows_peak: 0,
            decisions: 0,
            failovers: 0,
            retries: 0,
            faults: 0,
            completions: 0,
            failures: 0,
            solves: 0,
            solver_flows: 0,
            latency: Histogram::new(LATENCY_BOUNDS_SECS),
        }
    }
}

/// A link's heat over a window or a whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkHeat {
    /// Link index in the topology.
    pub link: usize,
    /// Human-readable link label (`src->dst`).
    pub name: String,
    /// Mean utilization over the covered samples.
    pub avg_util: f64,
    /// Peak utilization over the covered samples.
    pub peak_util: f64,
    /// Windows in which this link peaked at or above
    /// [`SATURATION_THRESHOLD`] (zero for per-window heat).
    pub saturated_windows: u64,
}

/// Computed per-window view handed to exporters and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSummary {
    /// Window ordinal: `floor(t / window)`.
    pub index: u64,
    /// Window start, in simulated seconds.
    pub start_s: f64,
    /// Window end (exclusive), in simulated seconds.
    pub end_s: f64,
    /// Network samples folded into the window.
    pub samples: u64,
    /// Mean active-flow count across samples.
    pub flows_avg: f64,
    /// Peak active-flow count.
    pub flows_peak: u64,
    /// Selection decisions made in the window.
    pub decisions: u64,
    /// Decisions divided by the window width.
    pub decisions_per_sec: f64,
    /// Failovers (replica abandoned, re-ranked) in the window.
    pub failovers: u64,
    /// Transfer retries scheduled in the window.
    pub retries: u64,
    /// Fault transitions (link state changes) in the window.
    pub faults: u64,
    /// Jobs completed successfully in the window.
    pub completions: u64,
    /// Jobs abandoned in the window.
    pub failures: u64,
    /// Fetch latencies observed in the window.
    pub latency_count: u64,
    /// Median fetch latency, seconds (None when no fetches completed).
    pub p50_s: Option<f64>,
    /// 95th-percentile fetch latency, seconds.
    pub p95_s: Option<f64>,
    /// 99th-percentile fetch latency, seconds.
    pub p99_s: Option<f64>,
    /// Solver invocations attributed to the window.
    pub solves: u64,
    /// Flows touched by those solves.
    pub solver_flows: u64,
    /// Hottest links this window, peak-utilization order.
    pub top_links: Vec<LinkHeat>,
}

/// Whole-run totals across every window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimelineTotals {
    /// Network samples recorded.
    pub samples: u64,
    /// Selection decisions recorded.
    pub decisions: u64,
    /// Failovers recorded.
    pub failovers: u64,
    /// Retries recorded.
    pub retries: u64,
    /// Fault transitions recorded.
    pub faults: u64,
    /// Successful completions recorded.
    pub completions: u64,
    /// Abandoned jobs recorded.
    pub failures: u64,
    /// Solver invocations recorded.
    pub solves: u64,
    /// Flows touched by those solves.
    pub solver_flows: u64,
}

/// Deterministic sim-time windowed time-series over a grid run.
///
/// Construct with the window width and the topology's link labels, then
/// feed it samples and counter events as the simulation advances. All
/// inputs must arrive in nondecreasing sim-time order (the discrete-event
/// loop guarantees this); a sample timed before the newest window is
/// clamped into that window rather than reopening history.
#[derive(Debug, Clone)]
pub struct TimelineRecorder {
    window: SimDuration,
    links: Vec<String>,
    top_k: usize,
    windows: Vec<WindowAgg>,
    last_solves: u64,
    last_solver_flows: u64,
}

impl TimelineRecorder {
    /// A recorder with `window`-wide buckets over the given links.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration, links: Vec<String>) -> Self {
        assert!(!window.is_zero(), "timeline window must be non-zero");
        TimelineRecorder {
            window,
            links,
            top_k: DEFAULT_TOP_K,
            windows: Vec::new(),
            last_solves: 0,
            last_solver_flows: 0,
        }
    }

    /// Override how many hottest links the exporters surface.
    pub fn with_top_k(mut self, top_k: usize) -> Self {
        self.top_k = top_k.max(1);
        self
    }

    /// Window width in simulated seconds.
    pub fn window_secs(&self) -> f64 {
        self.window.as_secs_f64()
    }

    /// The link labels this recorder samples, in link-index order.
    pub fn link_names(&self) -> &[String] {
        &self.links
    }

    /// Number of windows opened so far.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    fn window_at(&mut self, time: SimTime) -> &mut WindowAgg {
        let idx = time.as_nanos() / self.window.as_nanos();
        if self.windows.last().is_none_or(|w| w.index < idx) {
            let links = self.links.len();
            self.windows.push(WindowAgg::new(idx, links));
        }
        let last = self.windows.len() - 1;
        &mut self.windows[last]
    }

    /// Fold one network sample (per-link utilizations in link-index order
    /// plus the active-flow count) into the window covering `time`.
    pub fn sample_network(&mut self, time: SimTime, utils: &[f64], active_flows: usize) {
        let w = self.window_at(time);
        w.samples += 1;
        for (i, &u) in utils.iter().enumerate() {
            if i >= w.util_sum.len() {
                break;
            }
            w.util_sum[i] += u;
            if u > w.util_peak[i] {
                w.util_peak[i] = u;
            }
        }
        w.flows_sum += active_flows as u64;
        w.flows_peak = w.flows_peak.max(active_flows as u64);
    }

    /// Attribute solver work to the window covering `time`, given the
    /// engine's *cumulative* solve / flows-touched totals. The recorder
    /// differences successive totals itself.
    pub fn record_engine_totals(&mut self, time: SimTime, solves: u64, solver_flows: u64) {
        let d_solves = solves.saturating_sub(self.last_solves);
        let d_flows = solver_flows.saturating_sub(self.last_solver_flows);
        self.last_solves = solves;
        self.last_solver_flows = solver_flows;
        if d_solves == 0 && d_flows == 0 {
            return;
        }
        let w = self.window_at(time);
        w.solves += d_solves;
        w.solver_flows += d_flows;
    }

    /// Reset the engine-counter baseline without recording — call when the
    /// recorder attaches to a grid that has already been running.
    pub fn rebase_engine_totals(&mut self, solves: u64, solver_flows: u64) {
        self.last_solves = solves;
        self.last_solver_flows = solver_flows;
    }

    /// Record one completed fetch's end-to-end latency.
    pub fn observe_latency(&mut self, time: SimTime, secs: f64) {
        self.window_at(time).latency.observe(secs);
    }

    /// Record one replica-selection decision.
    pub fn record_decision(&mut self, time: SimTime) {
        self.window_at(time).decisions += 1;
    }

    /// Record one failover (replica abandoned and candidates re-ranked).
    pub fn record_failover(&mut self, time: SimTime) {
        self.window_at(time).failovers += 1;
    }

    /// Record one scheduled transfer retry.
    pub fn record_retry(&mut self, time: SimTime) {
        self.window_at(time).retries += 1;
    }

    /// Record one link fault transition (either direction).
    pub fn record_fault(&mut self, time: SimTime) {
        self.window_at(time).faults += 1;
    }

    /// Record one finished job; `ok` is false for abandoned jobs.
    pub fn record_completion(&mut self, time: SimTime, ok: bool) {
        let w = self.window_at(time);
        if ok {
            w.completions += 1;
        } else {
            w.failures += 1;
        }
    }

    fn heat(&self, w: &WindowAgg, link: usize) -> LinkHeat {
        LinkHeat {
            link,
            name: self.links.get(link).cloned().unwrap_or_default(),
            avg_util: if w.samples > 0 {
                w.util_sum[link] / w.samples as f64
            } else {
                0.0
            },
            peak_util: w.util_peak[link],
            saturated_windows: 0,
        }
    }

    fn top_links(&self, w: &WindowAgg) -> Vec<LinkHeat> {
        if w.samples == 0 {
            return Vec::new();
        }
        let mut order: Vec<usize> = (0..self.links.len()).collect();
        order.sort_by(|&a, &b| {
            w.util_peak[b]
                .partial_cmp(&w.util_peak[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    w.util_sum[b]
                        .partial_cmp(&w.util_sum[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .then_with(|| a.cmp(&b))
        });
        order
            .into_iter()
            .take(self.top_k)
            .map(|i| self.heat(w, i))
            .collect()
    }

    fn summarize(&self, w: &WindowAgg) -> WindowSummary {
        let width_s = self.window.as_secs_f64();
        WindowSummary {
            index: w.index,
            start_s: w.index as f64 * width_s,
            end_s: (w.index + 1) as f64 * width_s,
            samples: w.samples,
            flows_avg: if w.samples > 0 {
                w.flows_sum as f64 / w.samples as f64
            } else {
                0.0
            },
            flows_peak: w.flows_peak,
            decisions: w.decisions,
            decisions_per_sec: w.decisions as f64 / width_s,
            failovers: w.failovers,
            retries: w.retries,
            faults: w.faults,
            completions: w.completions,
            failures: w.failures,
            latency_count: w.latency.count(),
            p50_s: w.latency.quantile(0.50),
            p95_s: w.latency.quantile(0.95),
            p99_s: w.latency.quantile(0.99),
            solves: w.solves,
            solver_flows: w.solver_flows,
            top_links: self.top_links(w),
        }
    }

    /// Per-window summaries in time order.
    pub fn summaries(&self) -> Vec<WindowSummary> {
        self.windows.iter().map(|w| self.summarize(w)).collect()
    }

    /// Whole-run totals.
    pub fn totals(&self) -> TimelineTotals {
        let mut t = TimelineTotals::default();
        for w in &self.windows {
            t.samples += w.samples;
            t.decisions += w.decisions;
            t.failovers += w.failovers;
            t.retries += w.retries;
            t.faults += w.faults;
            t.completions += w.completions;
            t.failures += w.failures;
            t.solves += w.solves;
            t.solver_flows += w.solver_flows;
        }
        t
    }

    /// The run's `k` hottest links: highest peak utilization, ties broken
    /// by average then link index. Saturated-window counts come along.
    pub fn hottest_links(&self, k: usize) -> Vec<LinkHeat> {
        let mut sum = vec![0.0f64; self.links.len()];
        let mut peak = vec![0.0f64; self.links.len()];
        let mut sat = vec![0u64; self.links.len()];
        let mut samples = 0u64;
        for w in &self.windows {
            samples += w.samples;
            for i in 0..self.links.len() {
                sum[i] += w.util_sum[i];
                if w.util_peak[i] > peak[i] {
                    peak[i] = w.util_peak[i];
                }
                if w.samples > 0 && w.util_peak[i] >= SATURATION_THRESHOLD {
                    sat[i] += 1;
                }
            }
        }
        if samples == 0 {
            return Vec::new();
        }
        let mut order: Vec<usize> = (0..self.links.len()).collect();
        order.sort_by(|&a, &b| {
            peak[b]
                .partial_cmp(&peak[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    sum[b]
                        .partial_cmp(&sum[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .then_with(|| a.cmp(&b))
        });
        order
            .into_iter()
            .take(k)
            .map(|i| LinkHeat {
                link: i,
                name: self.links.get(i).cloned().unwrap_or_default(),
                avg_util: sum[i] / samples as f64,
                peak_util: peak[i],
                saturated_windows: sat[i],
            })
            .collect()
    }

    /// Deterministic JSON export: window width, link labels, per-window
    /// stats with top-k hottest links, and the run-level hottest links.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"window_secs\":");
        out.push_str(&json_f64(self.window.as_secs_f64()));
        out.push_str(",\"links\":[");
        for (i, name) in self.links.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(name));
        }
        out.push_str("],\"windows\":[");
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = self.summarize(w);
            let opt = |v: Option<f64>| v.map_or_else(|| "null".to_string(), json_f64);
            let _ = write!(
                out,
                "{{\"index\":{},\"start_s\":{},\"end_s\":{},\"samples\":{},\
                 \"flows_avg\":{},\"flows_peak\":{},\"decisions\":{},\
                 \"decisions_per_sec\":{},\"failovers\":{},\"retries\":{},\
                 \"faults\":{},\"completions\":{},\"failures\":{},\
                 \"latency_count\":{},\"p50_s\":{},\"p95_s\":{},\"p99_s\":{},\
                 \"solves\":{},\"solver_flows\":{},\"top_links\":[",
                s.index,
                json_f64(s.start_s),
                json_f64(s.end_s),
                s.samples,
                json_f64(s.flows_avg),
                s.flows_peak,
                s.decisions,
                json_f64(s.decisions_per_sec),
                s.failovers,
                s.retries,
                s.faults,
                s.completions,
                s.failures,
                s.latency_count,
                opt(s.p50_s),
                opt(s.p95_s),
                opt(s.p99_s),
                s.solves,
                s.solver_flows,
            );
            for (j, l) in s.top_links.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"link\":{},\"name\":{},\"avg_util\":{},\"peak_util\":{}}}",
                    l.link,
                    json_string(&l.name),
                    json_f64(l.avg_util),
                    json_f64(l.peak_util),
                );
            }
            out.push_str("]}");
        }
        out.push_str("],\"hottest_links\":[");
        for (i, l) in self.hottest_links(self.top_k).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"link\":{},\"name\":{},\"avg_util\":{},\"peak_util\":{},\
                 \"saturated_windows\":{}}}",
                l.link,
                json_string(&l.name),
                json_f64(l.avg_util),
                json_f64(l.peak_util),
                l.saturated_windows,
            );
        }
        out.push_str("]}");
        out
    }

    /// Deterministic compact text export, one window per line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "timeline window={}s links={} windows={}",
            self.window.as_secs_f64(),
            self.links.len(),
            self.windows.len(),
        );
        for w in &self.windows {
            let s = self.summarize(w);
            let _ = write!(
                out,
                "[{:.0},{:.0}) samples={} flows={:.1}/{} dec={} fail={} retry={} \
                 done={} lost={} solves={}",
                s.start_s,
                s.end_s,
                s.samples,
                s.flows_avg,
                s.flows_peak,
                s.decisions,
                s.failovers,
                s.retries,
                s.completions,
                s.failures,
                s.solves,
            );
            if let (Some(p50), Some(p95)) = (s.p50_s, s.p95_s) {
                let _ = write!(out, " p50={p50:.2}s p95={p95:.2}s");
            }
            if let Some(l) = s.top_links.first() {
                let _ = write!(out, " hot={}:{:.2}", l.name, l.peak_util);
            }
            out.push('\n');
        }
        out
    }

    /// The rendered "grid health report": a per-window table (flows,
    /// decisions/sec, latency percentiles, failovers, hottest link with
    /// its saturation) followed by the run's top-k hottest links.
    pub fn render_health_report(&self) -> String {
        let mut out = String::new();
        let t = self.totals();
        let _ = writeln!(
            out,
            "=== grid health report (window {}s, {} windows, {} links) ===",
            self.window.as_secs_f64(),
            self.windows.len(),
            self.links.len(),
        );
        let _ = writeln!(
            out,
            "jobs: {} completed, {} failed | {} decisions | {} failovers | \
             {} retries | {} faults | {} solver passes",
            t.completions, t.failures, t.decisions, t.failovers, t.retries, t.faults, t.solves,
        );
        if self.windows.is_empty() {
            out.push_str("(no windows recorded)\n");
            return out;
        }
        let _ = writeln!(
            out,
            "{:>16}  {:>12} {:>7} {:>8} {:>8} {:>8} {:>7}  hottest link (peak)",
            "window", "flows avg/pk", "dec/s", "p50(s)", "p95(s)", "p99(s)", "failov",
        );
        for w in &self.windows {
            let s = self.summarize(w);
            let span = format!("[{:>6.0},{:>6.0})", s.start_s, s.end_s);
            let flows = format!("{:.1}/{}", s.flows_avg, s.flows_peak);
            let fmt_p = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |p| format!("{p:.2}"));
            let hot = s
                .top_links
                .first()
                .map_or_else(String::new, |l| format!("{} ({:.2})", l.name, l.peak_util));
            let _ = writeln!(
                out,
                "{span:>16}  {flows:>12} {:>7.2} {:>8} {:>8} {:>8} {:>7}  {hot}",
                s.decisions_per_sec,
                fmt_p(s.p50_s),
                fmt_p(s.p95_s),
                fmt_p(s.p99_s),
                s.failovers,
            );
        }
        let hottest = self.hottest_links(self.top_k);
        if !hottest.is_empty() {
            let _ = writeln!(out, "top {} hottest links over the run:", hottest.len());
            for (i, l) in hottest.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  {}. {:<24} avg {:.2}  peak {:.2}  saturated {}/{} windows",
                    i + 1,
                    l.name,
                    l.avg_util,
                    l.peak_util,
                    l.saturated_windows,
                    self.windows.len(),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_nanos(s * 1_000_000_000)
    }

    fn recorder() -> TimelineRecorder {
        TimelineRecorder::new(
            SimDuration::from_secs(10),
            vec!["a->b".to_string(), "b->c".to_string()],
        )
    }

    #[test]
    fn samples_land_in_their_windows() {
        let mut tl = recorder();
        tl.sample_network(secs(1), &[0.5, 0.2], 3);
        tl.sample_network(secs(4), &[0.7, 0.4], 5);
        tl.sample_network(secs(12), &[1.0, 0.1], 2);
        let s = tl.summaries();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].index, 0);
        assert_eq!(s[0].samples, 2);
        assert_eq!(s[0].flows_peak, 5);
        assert!((s[0].flows_avg - 4.0).abs() < 1e-12);
        assert_eq!(s[1].index, 1);
        assert_eq!(s[1].top_links[0].name, "a->b");
        assert!((s[1].top_links[0].peak_util - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counters_and_latency_aggregate_per_window() {
        let mut tl = recorder();
        tl.record_decision(secs(2));
        tl.record_decision(secs(3));
        tl.record_failover(secs(4));
        tl.record_retry(secs(4));
        tl.record_fault(secs(5));
        tl.observe_latency(secs(6), 1.5);
        tl.observe_latency(secs(7), 40.0);
        tl.record_completion(secs(7), true);
        tl.record_completion(secs(8), false);
        tl.record_decision(secs(15));
        let s = tl.summaries();
        assert_eq!(s[0].decisions, 2);
        assert!((s[0].decisions_per_sec - 0.2).abs() < 1e-12);
        assert_eq!(s[0].failovers, 1);
        assert_eq!(s[0].retries, 1);
        assert_eq!(s[0].faults, 1);
        assert_eq!(s[0].completions, 1);
        assert_eq!(s[0].failures, 1);
        assert_eq!(s[0].latency_count, 2);
        let p50 = s[0].p50_s.expect("two observations");
        assert!(p50 <= 2.0, "median in the low bucket, got {p50}");
        assert_eq!(s[1].decisions, 1);
        let t = tl.totals();
        assert_eq!(t.decisions, 3);
        assert_eq!(t.completions, 1);
    }

    #[test]
    fn engine_totals_are_differenced_and_rebased() {
        let mut tl = recorder();
        tl.rebase_engine_totals(100, 1000);
        tl.record_engine_totals(secs(1), 110, 1050);
        tl.record_engine_totals(secs(2), 110, 1050);
        tl.record_engine_totals(secs(12), 130, 1150);
        let s = tl.summaries();
        assert_eq!(s[0].solves, 10);
        assert_eq!(s[0].solver_flows, 50);
        assert_eq!(s[1].solves, 20);
        assert_eq!(s[1].solver_flows, 100);
    }

    #[test]
    fn hottest_links_rank_by_peak_with_saturation_counts() {
        let mut tl = recorder();
        tl.sample_network(secs(1), &[1.0, 0.6], 1);
        tl.sample_network(secs(11), &[1.0, 0.9], 1);
        tl.sample_network(secs(21), &[0.2, 0.95], 1);
        let hot = tl.hottest_links(2);
        assert_eq!(hot[0].link, 0);
        assert_eq!(hot[0].saturated_windows, 2);
        assert_eq!(hot[1].link, 1);
        assert_eq!(hot[1].saturated_windows, 0);
    }

    #[test]
    fn exports_are_deterministic_and_survive_emptiness() {
        let build = || {
            let mut tl = recorder();
            tl.sample_network(secs(3), &[0.4, 0.9], 7);
            tl.record_decision(secs(3));
            tl.observe_latency(secs(9), 12.0);
            tl
        };
        let a = build();
        let b = build();
        assert_eq!(a.render_json(), b.render_json());
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.render_health_report(), b.render_health_report());
        assert!(a.render_json().starts_with("{\"window_secs\":10"));
        assert!(a.render_health_report().contains("hottest link"));
        let empty = recorder();
        assert!(empty.is_empty());
        assert!(empty.render_json().contains("\"windows\":[]"));
        assert!(empty.render_health_report().contains("no windows recorded"));
    }

    #[test]
    fn out_of_order_samples_clamp_into_the_newest_window() {
        let mut tl = recorder();
        tl.sample_network(secs(25), &[0.1, 0.1], 1);
        tl.record_decision(secs(3));
        assert_eq!(tl.window_count(), 1);
        assert_eq!(tl.summaries()[0].decisions, 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_is_rejected() {
        TimelineRecorder::new(SimDuration::ZERO, Vec::new());
    }
}
