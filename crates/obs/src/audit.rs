//! The replica-selection audit log: every cost-model decision, with the
//! full per-candidate factor breakdown the paper's Table 1 argues from.

use crate::event::{json_f64, json_string};
use datagrid_simnet::time::SimTime;
use std::fmt::Write as _;

/// One candidate replica as the selection server scored it.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateAudit {
    /// Host holding the replica.
    pub host: String,
    /// The network factor `BW_P` (predicted available bandwidth fraction).
    pub bw_p: f64,
    /// The CPU factor `CPU_P` (idle fraction from MDS).
    pub cpu_p: f64,
    /// The I/O factor `IO_P` (idle fraction from sysstat).
    pub io_p: f64,
    /// `weight.bandwidth * BW_P` — the weighted network term.
    pub weighted_bw: f64,
    /// `weight.cpu * CPU_P` — the weighted CPU term.
    pub weighted_cpu: f64,
    /// `weight.io * IO_P` — the weighted I/O term.
    pub weighted_io: f64,
    /// Final combined score.
    pub score: f64,
    /// Whether the replica is local to the requesting client.
    pub is_local: bool,
    /// Rank by score (0 = best).
    pub rank: usize,
    /// Measured transfer time in seconds, when a counterfactual replay or
    /// real fetch attached one.
    pub measured_secs: Option<f64>,
}

impl CandidateAudit {
    fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"host\":{},\"bw_p\":{},\"cpu_p\":{},\"io_p\":{},\
             \"weighted_bw\":{},\"weighted_cpu\":{},\"weighted_io\":{},\
             \"score\":{},\"is_local\":{},\"rank\":{},\"measured_secs\":{}}}",
            json_string(&self.host),
            json_f64(self.bw_p),
            json_f64(self.cpu_p),
            json_f64(self.io_p),
            json_f64(self.weighted_bw),
            json_f64(self.weighted_cpu),
            json_f64(self.weighted_io),
            json_f64(self.score),
            self.is_local,
            self.rank,
            self.measured_secs
                .map_or_else(|| "null".to_string(), json_f64),
        );
        out
    }
}

/// One recorded replica-selection decision.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionDecision {
    /// Simulation time of the decision.
    pub time: SimTime,
    /// Logical file name being fetched.
    pub lfn: String,
    /// Requesting client host.
    pub client: String,
    /// Selection policy in force (`cost-model`, `random`, ...).
    pub policy: String,
    /// The `(bandwidth, cpu, io)` weights the cost model used.
    pub weights: (f64, f64, f64),
    /// Every candidate, in the order the selector saw them.
    pub candidates: Vec<CandidateAudit>,
    /// Host the selector chose.
    pub winner: String,
}

impl SelectionDecision {
    /// The chosen candidate's audit record.
    pub fn winner_audit(&self) -> Option<&CandidateAudit> {
        self.candidates.iter().find(|c| c.host == self.winner)
    }

    /// Candidate hosts ordered by score rank (best first).
    pub fn hosts_by_rank(&self) -> Vec<&str> {
        let mut by_rank: Vec<&CandidateAudit> = self.candidates.iter().collect();
        by_rank.sort_by_key(|c| c.rank);
        by_rank.iter().map(|c| c.host.as_str()).collect()
    }

    /// Attach a measured transfer time (seconds) to one candidate.
    pub fn attach_measured(&mut self, host: &str, secs: f64) {
        if let Some(c) = self.candidates.iter_mut().find(|c| c.host == host) {
            c.measured_secs = Some(secs);
        }
    }

    /// Agreement between the score ranking and the measured transfer
    /// times: the fraction of candidate pairs (both measured) where the
    /// better-scored candidate was also the faster one. `None` until at
    /// least one comparable pair exists. `1.0` is the paper's Table 1
    /// claim — the cost model's order explains the measured order.
    pub fn rank_agreement(&self) -> Option<f64> {
        let measured: Vec<&CandidateAudit> = self
            .candidates
            .iter()
            .filter(|c| c.measured_secs.is_some())
            .collect();
        let mut pairs = 0u32;
        let mut agree = 0u32;
        for (i, a) in measured.iter().enumerate() {
            for b in &measured[i + 1..] {
                let (ta, tb) = (
                    a.measured_secs.expect("filtered"),
                    b.measured_secs.expect("filtered"),
                );
                if ta == tb {
                    continue;
                }
                pairs += 1;
                // Lower rank = better score; lower time = faster.
                if (a.rank < b.rank) == (ta < tb) {
                    agree += 1;
                }
            }
        }
        (pairs > 0).then(|| f64::from(agree) / f64::from(pairs))
    }

    /// Render as one JSON object (stable field order).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"t_ns\":{},\"lfn\":{},\"client\":{},\"policy\":{},\
             \"weights\":{{\"bandwidth\":{},\"cpu\":{},\"io\":{}}},\"candidates\":[",
            self.time.as_nanos(),
            json_string(&self.lfn),
            json_string(&self.client),
            json_string(&self.policy),
            json_f64(self.weights.0),
            json_f64(self.weights.1),
            json_f64(self.weights.2),
        );
        for (i, c) in self.candidates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&c.to_json());
        }
        let _ = write!(
            out,
            "],\"winner\":{},\"rank_agreement\":{}}}",
            json_string(&self.winner),
            self.rank_agreement()
                .map_or_else(|| "null".to_string(), json_f64),
        );
        out
    }

    /// Render as an aligned human-readable block.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "selection @ {:.3}s  lfn={}  client={}  policy={}  weights=({}, {}, {})",
            self.time.as_secs_f64(),
            self.lfn,
            self.client,
            self.policy,
            self.weights.0,
            self.weights.1,
            self.weights.2,
        );
        let mut by_rank: Vec<&CandidateAudit> = self.candidates.iter().collect();
        by_rank.sort_by_key(|c| c.rank);
        for c in by_rank {
            let _ = writeln!(
                out,
                "  #{} {:<10} BW_P {:.4}  CPU_P {:.4}  IO_P {:.4}  -> score {:.4}{}{}{}",
                c.rank + 1,
                c.host,
                c.bw_p,
                c.cpu_p,
                c.io_p,
                c.score,
                if c.host == self.winner {
                    "  [chosen]"
                } else {
                    ""
                },
                if c.is_local { "  (local)" } else { "" },
                c.measured_secs
                    .map_or_else(String::new, |t| format!("  measured {t:.2}s")),
            );
        }
        if let Some(agreement) = self.rank_agreement() {
            let _ = writeln!(
                out,
                "  rank-vs-measured agreement: {:.0}%",
                agreement * 100.0
            );
        }
        out
    }
}

/// Bounded log of selection decisions, oldest first.
#[derive(Debug, Clone)]
pub struct SelectionAuditLog {
    decisions: Vec<SelectionDecision>,
    cap: usize,
    dropped: u64,
}

impl SelectionAuditLog {
    /// Default retention (decisions kept before the oldest are dropped).
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// A log with the default capacity.
    pub fn new() -> Self {
        SelectionAuditLog::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A log retaining at most `cap` decisions (clamped to ≥ 1).
    pub fn with_capacity(cap: usize) -> Self {
        SelectionAuditLog {
            decisions: Vec::new(),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    /// Append a decision, dropping the oldest at capacity.
    pub fn record(&mut self, decision: SelectionDecision) {
        if self.decisions.len() == self.cap {
            self.decisions.remove(0);
            self.dropped += 1;
        }
        self.decisions.push(decision);
    }

    /// Retained decisions, oldest first.
    pub fn decisions(&self) -> &[SelectionDecision] {
        &self.decisions
    }

    /// The most recent decision.
    pub fn last(&self) -> Option<&SelectionDecision> {
        self.decisions.last()
    }

    /// Mutable access to the most recent decision (for attaching measured
    /// times after the fetch completes).
    pub fn last_mut(&mut self) -> Option<&mut SelectionDecision> {
        self.decisions.last_mut()
    }

    /// The sequence number the *next* recorded decision will get.
    /// Sequence numbers count every decision ever recorded (retained or
    /// evicted), so they are stable handles: capture `next_seq()` just
    /// before recording and the pair survives later evictions.
    pub fn next_seq(&self) -> u64 {
        self.dropped + self.decisions.len() as u64
    }

    /// Mutable access to the decision with sequence number `seq`, or
    /// `None` once it has been evicted. Concurrent workloads interleave
    /// decisions, so "the last entry" is not necessarily "my entry" —
    /// this is the indexed counterpart of [`SelectionAuditLog::last_mut`].
    pub fn decision_mut_by_seq(&mut self, seq: u64) -> Option<&mut SelectionDecision> {
        let idx = usize::try_from(seq.checked_sub(self.dropped)?).ok()?;
        self.decisions.get_mut(idx)
    }

    /// Number of retained decisions.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// True when no decision has been retained.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// How many decisions were evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// All retained decisions as JSON Lines.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for d in &self.decisions {
            out.push_str(&d.to_json());
            out.push('\n');
        }
        out
    }

    /// All retained decisions as human-readable text blocks.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.decisions {
            out.push_str(&d.render_text());
        }
        out
    }
}

impl Default for SelectionAuditLog {
    fn default() -> Self {
        SelectionAuditLog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(host: &str, score: f64, rank: usize) -> CandidateAudit {
        CandidateAudit {
            host: host.to_string(),
            bw_p: score,
            cpu_p: 0.9,
            io_p: 0.8,
            weighted_bw: 0.8 * score,
            weighted_cpu: 0.09,
            weighted_io: 0.08,
            score: 0.8 * score + 0.17,
            is_local: false,
            rank,
            measured_secs: None,
        }
    }

    fn decision() -> SelectionDecision {
        SelectionDecision {
            time: SimTime::from_secs_f64(120.0),
            lfn: "file-d".into(),
            client: "alpha1".into(),
            policy: "cost-model".into(),
            weights: (0.8, 0.1, 0.1),
            candidates: vec![
                candidate("lz02", 0.1, 2),
                candidate("alpha4", 0.9, 0),
                candidate("gridhit0", 0.5, 1),
            ],
            winner: "alpha4".into(),
        }
    }

    #[test]
    fn ranks_and_winner_lookup() {
        let d = decision();
        assert_eq!(d.hosts_by_rank(), vec!["alpha4", "gridhit0", "lz02"]);
        assert_eq!(d.winner_audit().expect("winner").host, "alpha4");
    }

    #[test]
    fn rank_agreement_counts_pairs() {
        let mut d = decision();
        assert_eq!(d.rank_agreement(), None);
        d.attach_measured("alpha4", 2.0);
        d.attach_measured("gridhit0", 5.0);
        d.attach_measured("lz02", 60.0);
        assert_eq!(d.rank_agreement(), Some(1.0));
        // Swap: now the best-scored is the slowest -> 1 of 3 pairs agree.
        d.attach_measured("alpha4", 100.0);
        let agreement = d.rank_agreement().expect("measured");
        assert!((agreement - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn log_caps_and_renders() {
        let mut log = SelectionAuditLog::with_capacity(2);
        for _ in 0..3 {
            log.record(decision());
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        let jsonl = log.render_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"winner\":\"alpha4\""));
        assert!(log.render_text().contains("[chosen]"));
    }
}
