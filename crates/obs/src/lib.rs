//! # datagrid-obs
//!
//! Grid-wide observability for the Data Grid reproduction: the layer that
//! lets an experiment explain *why* a replica was chosen and *what* the
//! simulated network and hosts were doing while a transfer ran — the
//! instrumented history that the NWS / regression-prediction lineage of the
//! paper (Vazhkudai & Foster; Vazhkudai & Schopf) builds on.
//!
//! Three cooperating pieces, all dependency-free and deterministic:
//!
//! - a **structured event bus** ([`event::Event`], [`bus::EventBus`]) with
//!   pluggable sinks — an in-memory ring buffer, and text / JSONL writers;
//! - a **metrics registry** ([`metrics::MetricsRegistry`]) of named
//!   counters, gauges and fixed-bucket histograms, with byte-stable text
//!   and JSON exporters;
//! - **transfer spans** ([`span::TransferSpan`]) and a **selection audit
//!   log** ([`audit::SelectionAuditLog`]) recording every GridFTP session's
//!   phase timeline and every cost-model decision's per-candidate
//!   `BW_P / CPU_P / IO_P` breakdown.
//!
//! [`Recorder`] bundles the ring buffer, registry and audit log into one
//!   `Clone`-able unit so the `DataGrid` orchestrator (which is cloned for
//! counterfactual replay) carries its instrumentation state by value:
//! clones observe independently and never entangle.
//!
//! Everything renders through `BTreeMap`-ordered iteration and plain
//! decimal formatting, so two identically-seeded runs export byte-identical
//! dumps — that property is load-bearing and covered by tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod audit;
pub mod bus;
pub mod event;
pub mod metrics;
pub mod prof;
pub mod span;
pub mod timeline;

pub use audit::{CandidateAudit, SelectionAuditLog, SelectionDecision};
pub use bus::{EventBus, EventSink, JsonlSink, RingBufferSink, TextSink};
pub use event::{Event, RingBuffer, Value};
pub use metrics::{Histogram, MetricsRegistry};
pub use prof::{PhaseGuard, PhaseProfiler, PhaseStat, ProfSnapshot};
pub use span::{PhaseSpan, TransferSpan};
pub use timeline::{LinkHeat, TimelineRecorder, TimelineTotals, WindowSummary};

/// The `Clone`-able observability state a grid carries by value.
///
/// Holds the event ring buffer, the metrics registry and the selection
/// audit log. Cloning a [`Recorder`] (as part of cloning a grid for
/// counterfactual replay) yields a fully independent copy.
#[derive(Debug, Clone)]
pub struct Recorder {
    enabled: bool,
    events: RingBuffer,
    metrics: MetricsRegistry,
    audit: SelectionAuditLog,
}

impl Recorder {
    /// Default ring-buffer capacity (events retained before the oldest are
    /// dropped).
    pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

    /// A recorder with the default event capacity, enabled.
    pub fn new() -> Self {
        Recorder::with_capacity(Self::DEFAULT_EVENT_CAPACITY)
    }

    /// A recorder retaining at most `capacity` events, enabled.
    pub fn with_capacity(capacity: usize) -> Self {
        Recorder {
            enabled: true,
            events: RingBuffer::new(capacity),
            metrics: MetricsRegistry::new(),
            audit: SelectionAuditLog::new(),
        }
    }

    /// A recorder that ignores everything handed to it.
    pub fn disabled() -> Self {
        let mut r = Recorder::new();
        r.enabled = false;
        r
    }

    /// Whether this recorder is accepting events and metric updates.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enable or disable recording in place.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Record a structured event (dropped when disabled).
    pub fn emit(&mut self, event: Event) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// The retained event history, oldest first.
    pub fn events(&self) -> impl ExactSizeIterator<Item = &Event> {
        self.events.iter()
    }

    /// How many events were evicted from the ring buffer so far.
    pub fn dropped_events(&self) -> u64 {
        self.events.dropped()
    }

    /// Shared access to the metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A copy of the metrics registry with the recorder's own telemetry
    /// loss injected: `obs.events_dropped` (ring-buffer evictions) and
    /// `obs.decisions_dropped` (audit-log evictions). Every text/JSON
    /// dump built from this snapshot therefore shows whether — and how
    /// much — telemetry was silently discarded.
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        let mut snapshot = self.metrics.clone();
        snapshot.set_counter("obs.events_dropped", self.events.dropped());
        snapshot.set_counter("obs.decisions_dropped", self.audit.dropped());
        snapshot
    }

    /// Mutable access to the metrics registry.
    ///
    /// Metric updates land even while the recorder is disabled — upkeep is
    /// cheap and truthful counters are easier to reason about than
    /// half-recorded ones. The enabled flag gates only the event ring and
    /// the audit log; callers wanting full silence gate on
    /// [`Recorder::is_enabled`] themselves.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Shared access to the selection audit log.
    pub fn audit(&self) -> &SelectionAuditLog {
        &self.audit
    }

    /// Mutable access to the selection audit log.
    pub fn audit_mut(&mut self) -> &mut SelectionAuditLog {
        &mut self.audit
    }

    /// Record a selection decision (dropped when disabled).
    pub fn record_decision(&mut self, decision: SelectionDecision) {
        if self.enabled {
            self.audit.record(decision);
        }
    }

    /// Replay the retained event history into a bus (oldest first).
    ///
    /// This is how the by-value recorder meets the pluggable-sink world:
    /// attach text/JSONL sinks to a bus, then replay.
    pub fn replay_into(&self, bus: &mut EventBus) {
        for event in self.events.iter() {
            bus.publish(event);
        }
    }

    /// All retained events as JSON Lines.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.events.iter() {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagrid_simnet::time::SimTime;

    fn decision(i: u64) -> SelectionDecision {
        SelectionDecision {
            time: SimTime::from_nanos(i),
            lfn: format!("lfn{i}"),
            client: "client".to_string(),
            policy: "cost-model".to_string(),
            weights: (0.6, 0.2, 0.2),
            candidates: Vec::new(),
            winner: "host".to_string(),
        }
    }

    #[test]
    fn metrics_snapshot_exposes_drop_counters_in_every_dump() {
        let mut rec = Recorder::with_capacity(2);
        rec.metrics_mut().inc("selection.decisions");
        for i in 0..5u64 {
            rec.emit(Event::new(SimTime::from_nanos(i), "grid", "tick"));
        }
        // Overflow the audit log too, so both loss counters are non-zero.
        let mut audit = SelectionAuditLog::with_capacity(1);
        audit.record(decision(0));
        audit.record(decision(1));
        *rec.audit_mut() = audit;

        let snapshot = rec.metrics_snapshot();
        assert_eq!(snapshot.counter("obs.events_dropped"), 3);
        assert_eq!(snapshot.counter("obs.decisions_dropped"), 1);
        assert_eq!(snapshot.counter("selection.decisions"), 1);
        let text = snapshot.render_text();
        assert!(text.contains("obs.events_dropped 3"), "text dump:\n{text}");
        assert!(
            snapshot.render_json().contains("\"obs.events_dropped\":3"),
            "json dump: {}",
            snapshot.render_json()
        );
        // The live registry stays untouched — the loss counters are
        // injected at snapshot time, not double-counted.
        assert_eq!(rec.metrics().counter("obs.events_dropped"), 0);
    }
}
