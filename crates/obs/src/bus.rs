//! The pluggable event bus: subscribers receive every published event.

use crate::event::{Event, RingBuffer};
use std::io::Write;

/// A subscriber attached to an [`EventBus`].
pub trait EventSink {
    /// Receive one published event.
    fn receive(&mut self, event: &Event);

    /// Flush any buffered output (no-op by default).
    fn flush(&mut self) {}
}

/// Fan-out of events to any number of boxed sinks.
///
/// The bus is the *streaming* half of the observability layer: attach
/// writers (or custom closures) and publish, either live or by replaying a
/// [`crate::Recorder`]'s retained history.
#[derive(Default)]
pub struct EventBus {
    sinks: Vec<Box<dyn EventSink>>,
}

impl EventBus {
    /// A bus with no subscribers.
    pub fn new() -> Self {
        EventBus::default()
    }

    /// Attach a subscriber.
    pub fn subscribe(&mut self, sink: impl EventSink + 'static) -> &mut Self {
        self.sinks.push(Box::new(sink));
        self
    }

    /// Number of attached subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.sinks.len()
    }

    /// Deliver one event to every subscriber, in subscription order.
    pub fn publish(&mut self, event: &Event) {
        for sink in &mut self.sinks {
            sink.receive(event);
        }
    }

    /// Flush every subscriber.
    pub fn flush(&mut self) {
        for sink in &mut self.sinks {
            sink.flush();
        }
    }
}

/// Every closure over `&Event` is a sink.
impl<F: FnMut(&Event)> EventSink for F {
    fn receive(&mut self, event: &Event) {
        self(event);
    }
}

/// Sink retaining the last `cap` events in memory.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    ring: RingBuffer,
}

impl RingBufferSink {
    /// A ring-buffer sink retaining at most `cap` events.
    pub fn new(cap: usize) -> Self {
        RingBufferSink {
            ring: RingBuffer::new(cap),
        }
    }

    /// The underlying ring buffer.
    pub fn ring(&self) -> &RingBuffer {
        &self.ring
    }

    /// Consume the sink, keeping its history.
    pub fn into_ring(self) -> RingBuffer {
        self.ring
    }
}

impl EventSink for RingBufferSink {
    fn receive(&mut self, event: &Event) {
        self.ring.push(event.clone());
    }
}

/// Sink writing one human-readable line per event.
pub struct TextSink<W: Write> {
    writer: W,
}

impl<W: Write> TextSink<W> {
    /// A text sink over any writer (stdout, a file, a `Vec<u8>`).
    pub fn new(writer: W) -> Self {
        TextSink { writer }
    }

    /// Consume the sink and recover the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> EventSink for TextSink<W> {
    fn receive(&mut self, event: &Event) {
        // Sink I/O failures must not abort a simulation; drop the line.
        let _ = writeln!(self.writer, "{event}");
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Sink writing one JSON object per line (JSON Lines).
pub struct JsonlSink<W: Write> {
    writer: W,
}

impl<W: Write> JsonlSink<W> {
    /// A JSONL sink over any writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer }
    }

    /// Consume the sink and recover the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn receive(&mut self, event: &Event) {
        let _ = writeln!(self.writer, "{}", event.to_json());
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagrid_simnet::time::SimTime;

    fn sample(i: u64) -> Event {
        Event::new(SimTime::from_nanos(i * 1_000), "test", "tick").with("i", i)
    }

    #[test]
    fn bus_fans_out_to_all_sinks() {
        use std::cell::Cell;
        use std::rc::Rc;

        let counter = Rc::new(Cell::new(0u32));
        let seen = counter.clone();
        let mut bus = EventBus::new();
        bus.subscribe(TextSink::new(Vec::new()));
        bus.subscribe(move |_e: &Event| seen.set(seen.get() + 1));
        for i in 0..3 {
            bus.publish(&sample(i));
        }
        assert_eq!(counter.get(), 3);
        assert_eq!(bus.subscriber_count(), 2);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.receive(&sample(1));
        sink.receive(&sample(2));
        let text = String::from_utf8(sink.into_inner()).expect("utf8");
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with("{\"t_ns\":")));
    }
}
