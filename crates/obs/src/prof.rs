//! Lightweight hierarchical phase profiler for the replay hot path.
//!
//! [`PhaseProfiler`] aggregates guard-based spans (`settle`, `decide`,
//! `dispatch`, `retry/failover`, with nested phases like `settle/solve`)
//! into a per-phase tree. Two kinds of data are kept strictly apart:
//!
//! - **deterministic counts** — calls and "items" (flows touched, jobs
//!   dispatched), pure functions of the seed, always collected;
//! - **wall-clock timings** — total/self nanoseconds per phase, collected
//!   only when the `prof-timing` cargo feature is on. Default builds
//!   contain no clock reads at all, keeping the simulation crates honest
//!   about sim-time-only behaviour (see `datagrid-lint`'s `no-wallclock`
//!   rule; the one gated clock read below is allowlisted).
//!
//! Interior mutability (a `RefCell`) keeps the spanning API `&self`, so a
//! driver can open a span on one field of a struct while mutating its
//! siblings. The profiler is `Send` (it is owned, not shared) and clones
//! deeply, matching the by-value `Recorder` it travels next to.

use crate::event::{json_f64, json_string};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Whether this build collects wall-clock timings (`prof-timing`).
pub const TIMING_ENABLED: bool = cfg!(feature = "prof-timing");

#[cfg(feature = "prof-timing")]
mod clock {
    //! The only wall-clock reads in the workspace's simulation crates,
    //! compiled solely under `prof-timing`.

    pub(super) type Stamp = std::time::Instant;

    pub(super) fn now() -> Stamp {
        std::time::Instant::now()
    }

    pub(super) fn elapsed_ns(start: Stamp) -> u64 {
        u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// One phase node in the aggregation tree.
#[derive(Debug, Clone, Default)]
struct Node {
    /// Child phase name → node index, sorted for deterministic walks.
    children: BTreeMap<&'static str, usize>,
    /// Times this phase was entered (or externally recorded).
    calls: u64,
    /// Phase-defined work units (flows touched, jobs dispatched, ...).
    items: u64,
    /// Wall-clock nanoseconds inside this phase (zero without timing).
    total_ns: u64,
    /// Portion of `total_ns` spent inside child spans.
    child_ns: u64,
}

#[derive(Debug, Clone, Default)]
struct Inner {
    nodes: Vec<Node>,
    /// Top-level phase name → node index.
    roots: BTreeMap<&'static str, usize>,
    /// Currently-open span nodes, outermost first.
    stack: Vec<usize>,
}

impl Inner {
    /// Find or create `name` under `parent` (or at the root).
    fn child_of(&mut self, parent: Option<usize>, name: &'static str) -> usize {
        let existing = match parent {
            Some(p) => self.nodes[p].children.get(name).copied(),
            None => self.roots.get(name).copied(),
        };
        if let Some(id) = existing {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(Node::default());
        match parent {
            Some(p) => {
                self.nodes[p].children.insert(name, id);
            }
            None => {
                self.roots.insert(name, id);
            }
        }
        id
    }
}

/// Aggregating hierarchical phase profiler.
///
/// ```
/// use datagrid_obs::prof::PhaseProfiler;
///
/// let prof = PhaseProfiler::new();
/// {
///     let _settle = prof.span("settle");
///     let _solve = prof.span("solve");
///     prof.add_items(12); // flows touched by this solve
/// }
/// let snap = prof.snapshot();
/// assert_eq!(snap.phases[0].path, "settle");
/// assert_eq!(snap.phases[1].path, "settle/solve");
/// assert_eq!(snap.phases[1].items, 12);
/// ```
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    inner: RefCell<Inner>,
}

impl Clone for PhaseProfiler {
    fn clone(&self) -> Self {
        PhaseProfiler {
            inner: RefCell::new(self.inner.borrow().clone()),
        }
    }
}

impl PhaseProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        PhaseProfiler::default()
    }

    /// Open a span for `name` nested under the innermost open span. The
    /// returned guard closes the span (and, under `prof-timing`, charges
    /// its elapsed wall-clock time) when dropped. Guards must drop in
    /// LIFO order — scope them lexically.
    pub fn span(&self, name: &'static str) -> PhaseGuard<'_> {
        {
            let mut inner = self.inner.borrow_mut();
            let parent = inner.stack.last().copied();
            let id = inner.child_of(parent, name);
            inner.nodes[id].calls += 1;
            inner.stack.push(id);
        }
        PhaseGuard {
            prof: self,
            #[cfg(feature = "prof-timing")]
            started: clock::now(),
        }
    }

    /// Credit `n` work items to the innermost open span (no-op when no
    /// span is open).
    pub fn add_items(&self, n: u64) {
        let mut inner = self.inner.borrow_mut();
        if let Some(&id) = inner.stack.last() {
            inner.nodes[id].items += n;
        }
    }

    /// Fold externally-counted work into the phase at `path` without
    /// opening a span — used to attribute engine-kept counters (e.g.
    /// solver passes) under the phase that triggered them.
    pub fn record_external(&self, path: &[&'static str], calls: u64, items: u64) {
        if path.is_empty() {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        let mut parent = None;
        for name in path {
            parent = Some(inner.child_of(parent, name));
        }
        if let Some(id) = parent {
            inner.nodes[id].calls += calls;
            inner.nodes[id].items += items;
        }
    }

    fn exit(&self, elapsed_ns: u64) {
        let mut inner = self.inner.borrow_mut();
        let Some(id) = inner.stack.pop() else {
            return;
        };
        if elapsed_ns > 0 {
            inner.nodes[id].total_ns += elapsed_ns;
            if let Some(&parent) = inner.stack.last() {
                inner.nodes[parent].child_ns += elapsed_ns;
            }
        }
    }

    /// Discard all recorded phases (open spans keep working: their nodes
    /// are re-created on the next entry, their exits ignored).
    pub fn reset(&self) {
        *self.inner.borrow_mut() = Inner::default();
    }

    /// True when no phase has ever been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().roots.is_empty()
    }

    /// A flattened depth-first snapshot of the phase tree, children in
    /// name order — deterministic for identical call patterns.
    pub fn snapshot(&self) -> ProfSnapshot {
        fn walk(
            inner: &Inner,
            id: usize,
            name: &'static str,
            prefix: &str,
            depth: usize,
            out: &mut Vec<PhaseStat>,
        ) {
            let node = &inner.nodes[id];
            let path = if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix}/{name}")
            };
            out.push(PhaseStat {
                name,
                path: path.clone(),
                depth,
                calls: node.calls,
                items: node.items,
                total_ns: node.total_ns,
                self_ns: node.total_ns.saturating_sub(node.child_ns),
            });
            for (&child_name, &child_id) in &node.children {
                walk(inner, child_id, child_name, &path, depth + 1, out);
            }
        }
        let inner = self.inner.borrow();
        let mut phases = Vec::new();
        for (&name, &id) in &inner.roots {
            walk(&inner, id, name, "", 0, &mut phases);
        }
        ProfSnapshot { phases }
    }
}

/// Open-span guard returned by [`PhaseProfiler::span`]; closes the span
/// on drop.
#[must_use = "a span guard closes its phase when dropped"]
#[derive(Debug)]
pub struct PhaseGuard<'a> {
    prof: &'a PhaseProfiler,
    #[cfg(feature = "prof-timing")]
    started: clock::Stamp,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        #[cfg(feature = "prof-timing")]
        let elapsed = clock::elapsed_ns(self.started);
        #[cfg(not(feature = "prof-timing"))]
        let elapsed = 0u64;
        self.prof.exit(elapsed);
    }
}

/// One phase's aggregated stats inside a [`ProfSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Leaf phase name (`solve`).
    pub name: &'static str,
    /// Slash-joined path from the root (`settle/solve`).
    pub path: String,
    /// Nesting depth (roots are 0).
    pub depth: usize,
    /// Times the phase was entered or externally recorded.
    pub calls: u64,
    /// Work units credited to the phase.
    pub items: u64,
    /// Wall-clock nanoseconds (zero unless built with `prof-timing`).
    pub total_ns: u64,
    /// `total_ns` minus time spent in child phases.
    pub self_ns: u64,
}

/// A depth-first flattened phase tree; see [`PhaseProfiler::snapshot`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfSnapshot {
    /// Phases in depth-first, name-sorted order.
    pub phases: Vec<PhaseStat>,
}

impl ProfSnapshot {
    /// Deterministic text table. Timing columns appear only in
    /// `prof-timing` builds, keeping default output seed-pure.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if TIMING_ENABLED {
            let _ = writeln!(
                out,
                "{:<32} {:>12} {:>12} {:>12} {:>12} {:>6}",
                "phase", "calls", "items", "total_ms", "self_ms", "self%",
            );
        } else {
            let _ = writeln!(out, "{:<32} {:>12} {:>12}", "phase", "calls", "items");
        }
        for p in &self.phases {
            let label = format!("{}{}", "  ".repeat(p.depth), p.name);
            if TIMING_ENABLED {
                let total_ms = p.total_ns as f64 / 1e6;
                let self_ms = p.self_ns as f64 / 1e6;
                let pct = if p.total_ns > 0 {
                    100.0 * p.self_ns as f64 / p.total_ns as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "{label:<32} {:>12} {:>12} {total_ms:>12.3} {self_ms:>12.3} {pct:>5.1}%",
                    p.calls, p.items,
                );
            } else {
                let _ = writeln!(out, "{label:<32} {:>12} {:>12}", p.calls, p.items);
            }
        }
        out
    }

    /// Deterministic JSON export. The `timing` flag tells consumers
    /// whether `total_ns`/`self_ns` fields are present at all — they are
    /// omitted (not zeroed) in default builds so deterministic-field
    /// comparisons cover the whole document.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"timing\":");
        out.push_str(if TIMING_ENABLED { "true" } else { "false" });
        out.push_str(",\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"path\":{},\"depth\":{},\"calls\":{},\"items\":{}",
                json_string(&p.path),
                p.depth,
                p.calls,
                p.items,
            );
            if TIMING_ENABLED {
                let _ = write!(
                    out,
                    ",\"total_ns\":{},\"self_ns\":{},\"total_ms\":{}",
                    p.total_ns,
                    p.self_ns,
                    json_f64(p.total_ns as f64 / 1e6),
                );
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_aggregate_by_path() {
        let prof = PhaseProfiler::new();
        for _ in 0..3 {
            let _settle = prof.span("settle");
            {
                let _solve = prof.span("solve");
                prof.add_items(5);
            }
        }
        {
            let _decide = prof.span("decide");
            prof.add_items(1);
        }
        let snap = prof.snapshot();
        let paths: Vec<&str> = snap.phases.iter().map(|p| p.path.as_str()).collect();
        assert_eq!(paths, vec!["decide", "settle", "settle/solve"]);
        assert_eq!(snap.phases[1].calls, 3);
        assert_eq!(snap.phases[2].calls, 3);
        assert_eq!(snap.phases[2].items, 15);
        assert_eq!(snap.phases[2].depth, 1);
    }

    #[test]
    fn same_name_under_different_parents_stays_distinct() {
        let prof = PhaseProfiler::new();
        {
            let _a = prof.span("settle");
            let _s = prof.span("solve");
        }
        {
            let _b = prof.span("fault");
            let _s = prof.span("solve");
        }
        let snap = prof.snapshot();
        let paths: Vec<&str> = snap.phases.iter().map(|p| p.path.as_str()).collect();
        assert_eq!(
            paths,
            vec!["fault", "fault/solve", "settle", "settle/solve"]
        );
    }

    #[test]
    fn record_external_creates_and_accumulates_paths() {
        let prof = PhaseProfiler::new();
        prof.record_external(&["settle", "solve"], 10, 250);
        prof.record_external(&["settle", "solve"], 5, 50);
        prof.record_external(&[], 99, 99); // ignored
        let snap = prof.snapshot();
        assert_eq!(snap.phases.len(), 2);
        assert_eq!(snap.phases[1].path, "settle/solve");
        assert_eq!(snap.phases[1].calls, 15);
        assert_eq!(snap.phases[1].items, 300);
        assert_eq!(snap.phases[0].calls, 0, "parent not entered");
    }

    #[test]
    fn deterministic_counts_render_identically_across_runs() {
        let build = || {
            let prof = PhaseProfiler::new();
            {
                let _d = prof.span("decide");
                prof.add_items(2);
            }
            prof.record_external(&["settle", "solve"], 7, 70);
            prof.snapshot()
        };
        let a = build();
        let b = build();
        assert_eq!(a.phases.len(), b.phases.len());
        for (pa, pb) in a.phases.iter().zip(&b.phases) {
            assert_eq!(
                (pa.path.as_str(), pa.calls, pa.items),
                (pb.path.as_str(), pb.calls, pb.items)
            );
        }
        if !TIMING_ENABLED {
            // Without the feature the whole document is deterministic.
            assert_eq!(a.render_json(), b.render_json());
            assert_eq!(a.render_text(), b.render_text());
            assert!(a.render_json().starts_with("{\"timing\":false"));
            assert!(!a.render_json().contains("total_ns"));
        } else {
            assert!(a.render_json().starts_with("{\"timing\":true"));
            assert!(a.render_json().contains("total_ns"));
        }
    }

    #[test]
    fn clone_is_independent_and_reset_clears() {
        let prof = PhaseProfiler::new();
        {
            let _g = prof.span("settle");
        }
        let copy = prof.clone();
        {
            let _g = prof.span("settle");
        }
        assert_eq!(copy.snapshot().phases[0].calls, 1);
        assert_eq!(prof.snapshot().phases[0].calls, 2);
        prof.reset();
        assert!(prof.is_empty());
        assert!(prof.snapshot().phases.is_empty());
    }

    #[cfg(feature = "prof-timing")]
    #[test]
    fn timing_builds_charge_elapsed_time_to_phases() {
        let prof = PhaseProfiler::new();
        {
            let _outer = prof.span("settle");
            let _inner = prof.span("solve");
            // Burn a little real time so elapsed_ns > 0 on any clock.
            let mut acc = 0u64;
            for i in 0..50_000u64 {
                acc = acc.wrapping_add(i);
            }
            assert!(acc > 0);
        }
        let snap = prof.snapshot();
        let outer = &snap.phases[0];
        let inner = &snap.phases[1];
        assert!(inner.total_ns > 0, "inner span saw time pass");
        assert!(outer.total_ns >= inner.total_ns, "parent covers child");
        assert!(outer.self_ns <= outer.total_ns);
    }
}
