//! Transfer spans: the phase timeline of one (Grid)FTP session.
//!
//! A span is protocol-agnostic — the `gridftp` crate converts its
//! `TransferOutcome` phase records into one of these, and the grid
//! orchestrator emits it as `span.*` events and histogram observations.

use crate::event::{json_string, Event};
use datagrid_simnet::time::{SimDuration, SimTime};

/// One contiguous phase inside a transfer span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Phase name (the GridFTP lifecycle: `control` — authentication and
    /// handshake —, `ramp_up`, `data`, `completion` / teardown).
    pub name: &'static str,
    /// Phase start time.
    pub start: SimTime,
    /// Phase end time.
    pub end: SimTime,
}

impl PhaseSpan {
    /// Wall-clock length of the phase.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// The full instrumented record of one transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferSpan {
    /// Monotonic span id within one grid run.
    pub id: u64,
    /// Source host name.
    pub src: String,
    /// Destination host name.
    pub dst: String,
    /// Protocol label (`ftp`, `gridftp`).
    pub protocol: String,
    /// Logical file name, when the transfer served a catalog fetch.
    pub lfn: Option<String>,
    /// Application payload moved, in bytes.
    pub payload_bytes: u64,
    /// Bytes on the wire including protocol framing.
    pub wire_bytes: u64,
    /// Parallel TCP streams used.
    pub streams: u32,
    /// Stripe count (striped transfers; 1 otherwise).
    pub stripes: u32,
    /// Session start time.
    pub started: SimTime,
    /// Session end time.
    pub finished: SimTime,
    /// Phase timeline, in order.
    pub phases: Vec<PhaseSpan>,
}

impl TransferSpan {
    /// End-to-end duration of the transfer.
    pub fn duration(&self) -> SimDuration {
        self.finished.saturating_since(self.started)
    }

    /// Find a phase by name.
    pub fn phase(&self, name: &str) -> Option<&PhaseSpan> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Render the span as its event sequence: one `span.open`, one
    /// `span.phase` per phase, one `span.close`.
    pub fn to_events(&self) -> Vec<Event> {
        let mut events = Vec::with_capacity(self.phases.len() + 2);
        let mut open = Event::new(self.started, "gridftp", "span.open")
            .with("span", self.id)
            .with("src", self.src.as_str())
            .with("dst", self.dst.as_str())
            .with("protocol", self.protocol.as_str())
            .with("payload_bytes", self.payload_bytes)
            .with("streams", self.streams)
            .with("stripes", self.stripes);
        if let Some(lfn) = &self.lfn {
            open = open.with("lfn", lfn.as_str());
        }
        events.push(open);
        for phase in &self.phases {
            events.push(
                Event::new(phase.end, "gridftp", "span.phase")
                    .with("span", self.id)
                    .with("phase", phase.name)
                    .with("secs", phase.duration().as_secs_f64()),
            );
        }
        events.push(
            Event::new(self.finished, "gridftp", "span.close")
                .with("span", self.id)
                .with("secs", self.duration().as_secs_f64())
                .with("wire_bytes", self.wire_bytes),
        );
        events
    }

    /// Render as one JSON object (stable field order).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(128);
        let _ = write!(
            out,
            "{{\"span\":{},\"src\":{},\"dst\":{},\"protocol\":{},\"lfn\":{},\
             \"payload_bytes\":{},\"wire_bytes\":{},\"streams\":{},\"stripes\":{},\
             \"start_ns\":{},\"end_ns\":{},\"phases\":[",
            self.id,
            json_string(&self.src),
            json_string(&self.dst),
            json_string(&self.protocol),
            self.lfn
                .as_deref()
                .map_or_else(|| "null".to_string(), json_string),
            self.payload_bytes,
            self.wire_bytes,
            self.streams,
            self.stripes,
            self.started.as_nanos(),
            self.finished.as_nanos(),
        );
        for (i, phase) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"start_ns\":{},\"end_ns\":{}}}",
                json_string(phase.name),
                phase.start.as_nanos(),
                phase.end.as_nanos(),
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span() -> TransferSpan {
        let t = SimTime::from_secs_f64;
        TransferSpan {
            id: 7,
            src: "alpha4".into(),
            dst: "alpha1".into(),
            protocol: "gridftp".into(),
            lfn: Some("file-d".into()),
            payload_bytes: 32 << 20,
            wire_bytes: (32 << 20) + 4096,
            streams: 4,
            stripes: 1,
            started: t(10.0),
            finished: t(14.0),
            phases: vec![
                PhaseSpan {
                    name: "control",
                    start: t(10.0),
                    end: t(10.5),
                },
                PhaseSpan {
                    name: "data",
                    start: t(10.5),
                    end: t(13.8),
                },
                PhaseSpan {
                    name: "completion",
                    start: t(13.8),
                    end: t(14.0),
                },
            ],
        }
    }

    #[test]
    fn event_sequence_brackets_the_phases() {
        let events = span().to_events();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].kind, "span.open");
        assert_eq!(events[4].kind, "span.close");
        assert!(events[1..4].iter().all(|e| e.kind == "span.phase"));
        assert_eq!(
            events[0].field("lfn").map(|v| v.to_string()),
            Some("file-d".into())
        );
    }

    #[test]
    fn json_has_phases_in_order() {
        let json = span().to_json();
        let control = json.find("\"control\"").expect("control");
        let data = json.find("\"data\"").expect("data");
        let completion = json.find("\"completion\"").expect("completion");
        assert!(control < data && data < completion);
        assert!(json.contains("\"payload_bytes\":33554432"));
    }

    #[test]
    fn duration_and_phase_lookup() {
        let s = span();
        assert!((s.duration().as_secs_f64() - 4.0).abs() < 1e-9);
        assert!((s.phase("data").expect("data").duration().as_secs_f64() - 3.3).abs() < 1e-9);
        assert!(s.phase("nope").is_none());
    }
}
