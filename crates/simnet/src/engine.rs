//! The discrete-event network simulation engine.
//!
//! [`NetSim`] owns a [`Topology`], the set of active flows, timers and
//! background traffic, and advances simulated time event by event. Drivers
//! (the GridFTP executor, the Data Grid monitor loop) interact through a
//! poll-style API: start flows and timers, then repeatedly call
//! [`NetSim::next_event`] and react.
//!
//! Rates follow the fluid max-min model from [`crate::flow`]. The engine is
//! built to scale to tens of thousands of concurrent flows:
//!
//! * **Per-link flow indexes.** Every link knows the flows crossing it and
//!   every flow caches its route's link set (shared with the routing table
//!   via `Arc`), so "who shares a link with whom" is an index lookup, not a
//!   scan.
//! * **Incremental re-solves.** An arrival, completion, abort, cap change or
//!   fault transition re-solves only the connected component of the
//!   flow/link graph it perturbs (see [`SolverMode`]). Max-min fairness
//!   decomposes exactly across components — flows that share no links
//!   (directly or transitively) cannot affect each other's rates.
//! * **Lazy per-flow settling.** Byte accounting is advanced per flow when
//!   its rate is about to change (or its progress is read), not for every
//!   flow on every event. A flow whose rate is untouched by an event keeps
//!   its scheduled completion; nothing is recomputed for it.
//! * **Zero steady-state allocation.** All solver and component-walk
//!   buffers are owned scratch, reused across events.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::background::BackgroundProfile;
use crate::event::EventQueue;
use crate::fault::{FaultKind, FaultPlan, ScheduledFault};
use crate::flow::MaxMinSolver;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::topology::{Bandwidth, LinkId, NodeId, RoutingTable, Topology};
use crate::verify::{Certificate, TransitionCertificate, Violation, ABS_TOL_BPS, REL_TOL};

/// A slab burst below this peak never triggers the automatic low-water
/// scratch compaction — small simulations keep their buffers.
const AUTO_SHRINK_MIN_HIGH_WATER: usize = 128;

/// Identifier of a flow started on a [`NetSim`]. Unique for the lifetime of
/// the simulation (never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(u64);

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// What kind of traffic a flow carries. Background flows are internal to
/// the engine and never produce public events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FlowTag {
    /// A foreground transfer started by a driver.
    #[default]
    User,
    /// A small measurement flow (NWS-style bandwidth probe).
    Probe,
    /// Engine-generated cross traffic.
    Background,
}

/// A request to start a flow.
///
/// ```
/// use datagrid_simnet::prelude::*;
///
/// # let mut topo = Topology::new();
/// # let a = topo.add_node("a");
/// # let b = topo.add_node("b");
/// let spec = FlowSpec::new(a, b, 1 << 20)
///     .with_cap(Bandwidth::from_mbps(50.0))
///     .with_tag(FlowTag::Probe);
/// assert_eq!(spec.bytes, 1 << 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Per-flow rate ceiling (TCP window/loss bound, endpoint limits);
    /// `None` = limited only by the network.
    pub cap: Option<Bandwidth>,
    /// Traffic class.
    pub tag: FlowTag,
}

impl FlowSpec {
    /// Creates a user flow with no rate cap.
    pub fn new(src: NodeId, dst: NodeId, bytes: u64) -> Self {
        FlowSpec {
            src,
            dst,
            bytes,
            cap: None,
            tag: FlowTag::User,
        }
    }

    /// Sets the per-flow rate ceiling.
    pub fn with_cap(mut self, cap: Bandwidth) -> Self {
        self.cap = Some(cap);
        self
    }

    /// Sets the traffic class.
    pub fn with_tag(mut self, tag: FlowTag) -> Self {
        self.tag = tag;
        self
    }
}

/// Completion record for a finished flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowCompletion {
    /// The finished flow.
    pub id: FlowId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Bytes transferred.
    pub bytes: u64,
    /// When the flow started.
    pub started: SimTime,
    /// When the last byte arrived.
    pub finished: SimTime,
    /// Traffic class.
    pub tag: FlowTag,
}

impl FlowCompletion {
    /// Total transfer duration.
    pub fn duration(&self) -> SimDuration {
        self.finished - self.started
    }

    /// Average achieved throughput.
    pub fn avg_throughput(&self) -> Bandwidth {
        let secs = self.duration().as_secs_f64();
        if secs <= 0.0 {
            Bandwidth::ZERO
        } else {
            Bandwidth::from_bps(self.bytes as f64 * 8.0 / secs)
        }
    }
}

/// A public simulation event.
#[derive(Debug, Clone, PartialEq)]
pub struct SimEvent {
    /// When the event occurred.
    pub time: SimTime,
    /// What happened.
    pub kind: EventKind,
}

/// The kinds of public simulation events.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A user or probe flow delivered its last byte.
    FlowCompleted(FlowCompletion),
    /// A timer scheduled with [`NetSim::schedule_timer`] fired; carries the
    /// caller's token.
    TimerFired(u64),
    /// An injected fault started or cleared (see
    /// [`NetSim::install_fault_plan`]).
    FaultChanged(FaultNotice),
}

/// Public notification of a fault transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultNotice {
    /// Index of the fault in installation order (unique per simulation).
    pub index: usize,
    /// What the fault does.
    pub kind: FaultKind,
    /// `true` when the fault just started, `false` when it cleared.
    /// Instant faults (connection drops) only ever report `true`.
    pub active: bool,
}

/// Progress snapshot of an active flow (see [`NetSim::abort_flow`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowProgress {
    /// Bytes already delivered.
    pub bytes_done: f64,
    /// Bytes still outstanding.
    pub bytes_remaining: f64,
    /// Current allocated rate.
    pub rate: Bandwidth,
}

/// How the engine recomputes rates after an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverMode {
    /// Re-solve only the connected component of flows/links perturbed by
    /// the event. Exact: max-min fairness decomposes across components
    /// (rates can differ from a global solve only at floating-point ulp
    /// scale). The default.
    #[default]
    Incremental,
    /// Settle every flow and re-run progressive filling over the whole
    /// grid on every event — the pre-index behaviour. Kept as the
    /// benchmark baseline and for differential testing.
    Full,
}

#[derive(Debug, Clone)]
struct FlowState {
    id: FlowId,
    src: NodeId,
    dst: NodeId,
    /// Route links, shared with the routing table (O(1) clone).
    route: Arc<[LinkId]>,
    total_bytes: u64,
    /// Bytes outstanding as of `last_update` (not "now": settling is lazy).
    remaining: f64,
    cap_bps: f64,
    /// Allocated rate; `NAN` until the first solve touches the flow, which
    /// guarantees the first solve always observes a rate change.
    rate_bps: f64,
    started: SimTime,
    /// When `remaining` was last made exact.
    last_update: SimTime,
    /// Bumped on every rate assignment; stale completion events carry an
    /// older epoch and are discarded.
    epoch: u64,
    tag: FlowTag,
}

#[derive(Debug, Clone)]
enum Internal {
    Completion { slot: u32, epoch: u64 },
    Timer { token: u64 },
    BackgroundArrival { profile: usize },
    FaultTransition { index: usize, start: bool },
}

#[derive(Debug, Clone)]
struct FaultRecord {
    fault: ScheduledFault,
    active: bool,
}

/// Reusable scratch for walking a connected component of the flow/link
/// graph. Stamped mark arrays (generation counters) make `begin` O(1)
/// instead of clearing marks for every flow slot and link.
#[derive(Debug, Clone, Default)]
struct CompScratch {
    flow_stamp: Vec<u64>,
    link_stamp: Vec<u64>,
    stamp: u64,
    /// Flow slots in the component, in discovery order.
    flows: Vec<u32>,
    /// Global link indices in the component, in discovery order.
    links: Vec<u32>,
}

impl CompScratch {
    /// Starts a new component walk over `flow_slots` slots and `links`
    /// links.
    fn begin(&mut self, flow_slots: usize, links: usize) {
        self.stamp += 1;
        self.flows.clear();
        self.links.clear();
        if self.flow_stamp.len() < flow_slots {
            self.flow_stamp.resize(flow_slots, 0);
        }
        if self.link_stamp.len() < links {
            self.link_stamp.resize(links, 0);
        }
    }

    /// Seeds the walk with a link (deduplicated).
    fn add_link(&mut self, link: LinkId) {
        let i = link.index();
        if self.link_stamp[i] != self.stamp {
            self.link_stamp[i] = self.stamp;
            self.links.push(link.0);
        }
    }

    /// Grows the flow stamp array to cover `flow_slots` slots without
    /// starting a new walk — used when the slab grows mid-cohort (an
    /// arrival deferred into an already-open batch).
    fn ensure_flows(&mut self, flow_slots: usize) {
        if self.flow_stamp.len() < flow_slots {
            self.flow_stamp.resize(flow_slots, 0);
        }
    }

    /// Seeds the walk with a flow slot (deduplicated); the flow's route
    /// links join the frontier.
    fn add_flow(&mut self, slot: u32, flows: &[Option<FlowState>]) {
        let s = slot as usize;
        if self.flow_stamp[s] == self.stamp {
            return;
        }
        self.flow_stamp[s] = self.stamp;
        self.flows.push(slot);
        let f = flows[s].as_ref().expect("indexed flow is live");
        for &l in f.route.iter() {
            self.add_link(l);
        }
    }

    /// Element capacity currently pinned by the stamp arrays and
    /// worklists.
    fn footprint(&self) -> usize {
        self.flow_stamp.capacity()
            + self.link_stamp.capacity()
            + self.flows.capacity()
            + self.links.capacity()
    }

    /// Trims the stamp arrays to the current `flow_slots`/`links` extents
    /// and releases the worklists. The stamp counter is preserved, so
    /// marks for retained slots stay valid; `begin` regrows everything on
    /// demand.
    fn shrink(&mut self, flow_slots: usize, links: usize) {
        self.flow_stamp.truncate(flow_slots);
        self.flow_stamp.shrink_to_fit();
        self.link_stamp.truncate(links);
        self.link_stamp.shrink_to_fit();
        // Covers this line and the next:
        self.flows = Vec::new(); // lint: allow(alloc-in-hot-path) -- Vec::new is alloc-free; auto-shrink releases capacity
        self.links = Vec::new();
    }

    /// Breadth-first closure: every flow crossing a reached link is added,
    /// and its route links extend the frontier, until fixpoint.
    fn expand(&mut self, flows: &[Option<FlowState>], link_flows: &[Vec<u32>]) {
        let mut head = 0;
        while head < self.links.len() {
            let l = self.links[head] as usize;
            head += 1;
            let mut i = 0;
            while i < link_flows[l].len() {
                self.add_flow(link_flows[l][i], flows);
                i += 1;
            }
        }
    }
}

/// Pre-solve bit snapshot backing the transition certificate (see
/// [`crate::verify`], "Transition certificates"): one entry per live flow,
/// capturing the exact bit patterns the solve must either preserve
/// (out-of-component flows) or rewrite by exact re-integration (settled
/// flows). Reused across solves so validation stays allocation-free once
/// warm.
#[derive(Debug, Clone, Default)]
struct TransitionScratch {
    /// `(slot, rate bits, remaining bits, settle clock)` per live flow.
    entries: Vec<(u32, u64, u64, SimTime)>,
}

/// Scratch for [`NetSim::available_bandwidth`] phantom-flow probes, kept in
/// a `RefCell` so probing stays `&self` (it is conceptually a read) while
/// still reusing buffers across calls.
#[derive(Debug, Clone, Default)]
struct ProbeScratch {
    comp: CompScratch,
    solver: MaxMinSolver,
}

/// Lifetime counters of one [`NetSim`] — how much work the engine has
/// done. Cheap to keep (a handful of integer bumps per event) and exported
/// by the observability layer as `simnet.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Internal events processed (timers, completions, background arrivals).
    pub events_processed: u64,
    /// Timers delivered to the driver.
    pub timers_fired: u64,
    /// User/probe flows started.
    pub flows_started: u64,
    /// User/probe flows completed.
    pub flows_completed: u64,
    /// Background flows started by traffic profiles.
    pub background_flows_started: u64,
    /// Payload bytes of completed user/probe flows.
    pub bytes_completed: u64,
    /// Fault start/clear transitions applied from installed fault plans.
    pub fault_transitions: u64,
    /// Flows (any class) reset by [`crate::fault::FaultKind::ConnectionDrop`].
    pub flows_dropped: u64,
    /// Automatic low-water scratch compactions (see
    /// [`NetSim::set_auto_shrink`]).
    pub auto_shrinks: u64,
    /// Component-scoped (incremental) rate solves.
    pub incremental_solves: u64,
    /// Whole-grid (from-scratch) rate solves.
    pub full_solves: u64,
    /// Total flows handed to the solver across all solves — the real work
    /// measure behind the incremental-vs-full speedup.
    pub solver_flows_touched: u64,
    /// Same-instant event cohorts handled as one batch (two or more
    /// internal events sharing a timestamp; see
    /// [`NetSim::set_event_batching`]).
    pub event_cohorts: u64,
    /// Cohort-end solves that replaced two or more deferred per-event
    /// solves with a single component solve.
    pub batched_solves: u64,
    /// Per-event solves skipped because a cohort deferred them into one
    /// batched solve (`deferred - 1` summed over cohorts).
    pub solves_avoided: u64,
    /// Solver transitions audited and certified against the pre-solve bit
    /// snapshot (only counted while validation is on; see
    /// [`crate::verify`], "Transition certificates").
    pub transitions_certified: u64,
    /// Live flows compared across certified transitions (frozen +
    /// re-integrated) — the delta audit's work measure.
    pub transition_flows_checked: u64,
}

/// The discrete-event network simulator.
///
/// See the [crate-level documentation](crate) for a full example.
#[derive(Debug, Clone)]
pub struct NetSim {
    stats: EngineStats,
    topo: Topology,
    routing: RoutingTable,
    link_caps: Vec<f64>,
    /// Slab of flows; completed/aborted slots become `None` and are reused.
    flows: Vec<Option<FlowState>>,
    free_slots: Vec<u32>,
    /// Live flow id -> slot (lookups only; never iterated, so the hash
    /// map's order cannot leak into the timeline).
    id_slots: HashMap<FlowId, u32>,
    /// Per-link index: slots of the flows crossing each link.
    link_flows: Vec<Vec<u32>>,
    /// Live flows of any class.
    active_flows: usize,
    /// Live user/probe flows (public work).
    public_flows: usize,
    queue: EventQueue<Internal>,
    pending: VecDeque<SimEvent>,
    now: SimTime,
    epoch: u64,
    next_flow: u64,
    pending_timers: usize,
    rng_root: SimRng,
    background: Vec<(BackgroundProfile, SimRng)>,
    faults: Vec<FaultRecord>,
    mode: SolverMode,
    comp: CompScratch,
    solver: MaxMinSolver,
    /// Pre-solve bit snapshot for the transition certificate (filled only
    /// while `validate` is on).
    trans: TransitionScratch,
    /// One-shot armed corruption applied to an out-of-component flow right
    /// before the transition check — a test hook proving the delta audit
    /// catches a solver that leaks outside its component.
    inject_transition: Option<f64>,
    probe: RefCell<ProbeScratch>,
    /// Re-certify every solved component right after the solve (see
    /// [`crate::verify`]); defaults on in debug builds and under the
    /// `validate` feature.
    validate: bool,
    /// Automatic low-water scratch compaction (see
    /// [`NetSim::set_auto_shrink`]).
    auto_shrink: bool,
    /// Peak concurrent flow count since the last compaction — the
    /// high-water mark the low-water trigger compares against.
    slot_high_water: usize,
    /// Pre-fault capacities, diffed after a transition to seed the
    /// incremental re-solve with exactly the links that changed.
    cap_snapshot: Vec<f64>,
    /// `0..link_count`, cached for full-mode solves.
    all_links: Vec<u32>,
    /// Monotonic stamp of the flow/capacity state: bumped whenever a flow
    /// starts, ends, changes cap, or link capacities shift. Residual-
    /// bandwidth caches key off it (see [`NetSim::net_version`]).
    net_version: u64,
    /// Same-instant cohort batching armed (see
    /// [`NetSim::set_event_batching`]; default `true`).
    batching: bool,
    /// A cohort is open: flow mutations apply eagerly but rate solves are
    /// deferred into one batched solve at cohort end.
    batch_active: bool,
    /// Per-event solves deferred by the open cohort so far.
    batch_deferred: u64,
}

impl NetSim {
    /// Creates a simulator over `topo`, seeding all engine randomness
    /// (background traffic) from `seed`.
    pub fn new(topo: Topology, seed: u64) -> Self {
        let routing = RoutingTable::compute(&topo);
        let link_caps: Vec<f64> = topo
            .link_records()
            .iter()
            .map(|l| l.spec.capacity.as_bps())
            .collect();
        let link_count = link_caps.len();
        NetSim {
            stats: EngineStats::default(),
            topo,
            routing,
            link_caps,
            flows: Vec::new(),
            free_slots: Vec::new(),
            id_slots: HashMap::new(),
            link_flows: vec![Vec::new(); link_count],
            active_flows: 0,
            public_flows: 0,
            queue: EventQueue::new(),
            pending: VecDeque::new(),
            now: SimTime::ZERO,
            epoch: 0,
            next_flow: 0,
            pending_timers: 0,
            rng_root: SimRng::seed_from_u64(seed),
            background: Vec::new(),
            faults: Vec::new(),
            mode: SolverMode::default(),
            comp: CompScratch::default(),
            solver: MaxMinSolver::new(),
            trans: TransitionScratch::default(),
            inject_transition: None,
            probe: RefCell::new(ProbeScratch::default()),
            validate: cfg!(any(debug_assertions, feature = "validate")),
            auto_shrink: true,
            slot_high_water: 0,
            cap_snapshot: Vec::new(),
            all_links: (0..link_count as u32).collect(),
            net_version: 0,
            batching: true,
            batch_active: false,
            batch_deferred: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Monotonic version of the network's flow/capacity state. Any change
    /// that can move a path's residual bandwidth — a flow starting or
    /// ending (any class), a per-flow cap change, a fault capacity edge —
    /// bumps it, so equal versions guarantee equal
    /// [`NetSim::available_bandwidth`] answers.
    pub fn net_version(&self) -> u64 {
        self.net_version
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The static routing table.
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// How rate re-solves are scoped. [`SolverMode::Incremental`] unless
    /// overridden.
    pub fn solver_mode(&self) -> SolverMode {
        self.mode
    }

    /// Overrides the re-solve scoping (benchmarks and differential tests
    /// use [`SolverMode::Full`] as the from-scratch baseline).
    pub fn set_solver_mode(&mut self, mode: SolverMode) {
        self.mode = mode;
    }

    /// Whether same-instant event cohorts are solved as one batch
    /// (default: `true`).
    pub fn event_batching_enabled(&self) -> bool {
        self.batching
    }

    /// Arms or disarms same-instant cohort batching. When armed, internal
    /// events sharing a timestamp (simultaneous completions, fault edges,
    /// background arrivals) apply all their flow mutations first and then
    /// run a *single* component solve over the union of the perturbed
    /// components, instead of one solve per event. Exact: max-min rates
    /// depend only on the final flow/link state of the instant, so the
    /// batched solve assigns the same rates the last per-event solve would
    /// have. The per-event path is kept for differential testing.
    pub fn set_event_batching(&mut self, enabled: bool) {
        debug_assert!(!self.batch_active, "toggled batching inside a cohort");
        self.batching = enabled;
    }

    /// Whether every solve is re-certified in place (see [`crate::verify`]).
    pub fn validation_enabled(&self) -> bool {
        self.validate
    }

    /// Turns per-solve allocation certification on or off at runtime.
    ///
    /// Defaults on in debug builds and under the `validate` cargo feature;
    /// release binaries opt in per run (the bench bins' `--verify` flag).
    /// When enabled, a falsified certificate aborts the simulation
    /// immediately — a wrong allocation must never settle a byte.
    pub fn set_validation(&mut self, enabled: bool) {
        self.validate = enabled;
    }

    /// Whether the automatic low-water scratch compaction is armed
    /// (default: `true`).
    pub fn auto_shrink_enabled(&self) -> bool {
        self.auto_shrink
    }

    /// Arms or disarms the automatic low-water [`NetSim::shrink_scratch`]
    /// trigger: once the peak concurrent flow count has reached at least
    /// 128, draining below 25% of that high-water mark compacts the slab,
    /// stamp arrays and solver buffers in place (and resets the high-water
    /// mark to the surviving population). Long-lived embedders no longer
    /// need to find a quiet point to call [`NetSim::shrink_scratch`] by
    /// hand.
    pub fn set_auto_shrink(&mut self, enabled: bool) {
        self.auto_shrink = enabled;
    }

    /// Certifies the engine's current rate assignment for the whole grid
    /// without trusting any solver internals: conservation on every link,
    /// per-flow caps, byte accounting, and the max-min bottleneck
    /// certificate (see [`crate::verify`] for the exact checks and why
    /// they are complete).
    ///
    /// Read-only; cost is O(flows × route length + links).
    ///
    /// # Errors
    ///
    /// Returns the first [`Violation`] that falsifies the certificate.
    pub fn verify_allocation(&self) -> Result<Certificate, Violation> {
        let live: Vec<u32> = (0..self.flows.len() as u32)
            .filter(|&s| self.flows[s as usize].is_some())
            .collect();
        self.verify_scope(&live, &self.all_links)
    }

    /// Corrupts a live flow's allocated rate in place, bypassing the
    /// solver and the settle path — a test hook proving that
    /// [`NetSim::verify_allocation`] rejects perturbed allocations.
    /// Returns `false` if the flow is not active. The engine is left in
    /// an inconsistent state on purpose; do not keep simulating after it.
    #[doc(hidden)]
    pub fn perturb_rate_for_validation(&mut self, id: FlowId, delta_bps: f64) -> bool {
        let Some(&slot) = self.id_slots.get(&id) else {
            return false;
        };
        self.flows[slot as usize]
            .as_mut()
            .expect("indexed flow is live")
            .rate_bps += delta_bps;
        true
    }

    /// Arms a one-shot corruption of an out-of-component flow's rate,
    /// applied right after the next incremental solve's rate assignment
    /// and before its transition check — a test hook proving the delta
    /// audit rejects a solver that leaks outside its component. The
    /// perturbation is relative: the victim's rate moves by
    /// `max(|rate|, 1) * rel_delta`. Stays armed until a solve actually
    /// has a live flow outside its component. The engine is left in an
    /// inconsistent state once it fires; do not keep simulating after the
    /// resulting panic is caught.
    #[doc(hidden)]
    pub fn inject_transition_fault_for_validation(&mut self, rel_delta: f64) {
        self.inject_transition = Some(rel_delta);
    }

    /// Captures every live flow's rate/byte bit patterns ahead of a solve
    /// — the "before" side of the transition certificate.
    fn snapshot_transition(&mut self) {
        let entries = &mut self.trans.entries;
        entries.clear();
        for (slot, f) in self.flows.iter().enumerate() {
            if let Some(f) = f {
                entries.push((
                    slot as u32,
                    f.rate_bps.to_bits(),
                    f.remaining.to_bits(),
                    f.last_update,
                ));
            }
        }
    }

    /// Audits the transition the solve just applied against the pre-solve
    /// snapshot (see [`crate::verify`], "Transition certificates"). With
    /// `full_scope` every live flow belongs to the solve (full-mode /
    /// whole-grid solves); otherwise membership comes from the component
    /// stamp in `self.comp`.
    fn check_transition(&self, full_scope: bool) -> Result<TransitionCertificate, Violation> {
        let mut cert = TransitionCertificate {
            component_flows: self.comp.flows.len(),
            ..TransitionCertificate::default()
        };
        for &(slot, rate_bits, rem_bits, last_update) in &self.trans.entries {
            let s = slot as usize;
            let Some(f) = self.flows[s].as_ref() else {
                continue; // slot freed since the snapshot (not by a solve)
            };
            let rate_before = f64::from_bits(rate_bits);
            let rem_before = f64::from_bits(rem_bits);
            let in_scope =
                full_scope || self.comp.flow_stamp.get(s).copied() == Some(self.comp.stamp);
            if !in_scope {
                // Component confinement: bit-identical rate, bytes, clock.
                if f.rate_bps.to_bits() != rate_bits {
                    return Err(Violation::OutOfComponentRateChange {
                        flow: f.id,
                        before_bps: rate_before,
                        after_bps: f.rate_bps,
                    });
                }
                if f.remaining.to_bits() != rem_bits || f.last_update != last_update {
                    return Err(Violation::OutOfComponentSettle {
                        flow: f.id,
                        before_remaining: rem_before,
                        after_remaining: f.remaining,
                    });
                }
                cert.frozen_flows += 1;
                continue;
            }
            // In scope: either untouched (rate bits and clock unchanged)
            // or settled by exact re-integration of the *pre-solve* rate.
            // `max(..., 0.0)` mirrors `settle_flow` bit for bit.
            let expected = if f.rate_bps.to_bits() == rate_bits && f.last_update == last_update {
                rem_before
            } else {
                let dt = (self.now - last_update).as_secs_f64();
                if dt > 0.0 {
                    (rem_before - rate_before / 8.0 * dt).max(0.0)
                } else {
                    rem_before
                }
            };
            if f.remaining.to_bits() != expected.to_bits() {
                return Err(Violation::TransitionByteMismatch {
                    flow: f.id,
                    rate_bps: rate_before,
                    expected_remaining: expected,
                    actual_remaining: f.remaining,
                });
            }
            if f.rate_bps.to_bits() != rate_bits {
                cert.resolved_flows += 1;
            } else {
                cert.frozen_flows += 1;
            }
            cert.bytes_settled += (rem_before - f.remaining).max(0.0);
        }
        Ok(cert)
    }

    /// Validate-mode epilogue shared by both solve paths: fire any armed
    /// injection, audit the transition, then re-certify the settled state.
    ///
    /// # Panics
    ///
    /// Panics if either certificate is falsified.
    fn enforce_transition(&mut self, full_scope: bool) {
        if self.inject_transition.is_some() && !full_scope {
            self.apply_transition_injection();
        }
        match self.check_transition(full_scope) {
            Ok(cert) => {
                self.stats.transitions_certified += 1;
                self.stats.transition_flows_checked +=
                    (cert.frozen_flows + cert.resolved_flows) as u64;
            }
            Err(v) => panic!("transition certificate violated after solve: {v}"),
        }
    }

    /// Fires the armed one-shot injection on the first live flow outside
    /// the solved component, if any (stays armed otherwise).
    fn apply_transition_injection(&mut self) {
        let Some(rel) = self.inject_transition else {
            return;
        };
        let victim = (0..self.flows.len()).find(|&s| {
            self.flows[s].is_some() && self.comp.flow_stamp.get(s).copied() != Some(self.comp.stamp)
        });
        if let Some(s) = victim {
            self.inject_transition = None;
            let f = self.flows[s].as_mut().expect("victim slot is live");
            f.rate_bps += f.rate_bps.abs().max(1.0) * rel;
        }
    }

    /// Checks the certificate over a scope of flow slots and the links
    /// they can touch. The scope must be closed: every live flow crossing
    /// a scoped link is itself scoped (the component walker and
    /// `all_links` both guarantee this), otherwise peak shares would be
    /// computed against stale rates.
    fn verify_scope(&self, slots: &[u32], links: &[u32]) -> Result<Certificate, Violation> {
        let mut cert = Certificate {
            flows: slots.len(),
            ..Certificate::default()
        };
        // Per-flow sanity: solved, feasible, within cap, bytes in range.
        for &slot in slots {
            let f = self.flows[slot as usize]
                .as_ref()
                .expect("verification scope holds a dead slot");
            let rate = f.rate_bps;
            if rate.is_nan() {
                return Err(Violation::UnsolvedRate { flow: f.id });
            }
            if rate < -ABS_TOL_BPS {
                return Err(Violation::NegativeRate {
                    flow: f.id,
                    rate_bps: rate,
                });
            }
            if rate > f.cap_bps * (1.0 + REL_TOL) + ABS_TOL_BPS {
                return Err(Violation::CapExceeded {
                    flow: f.id,
                    rate_bps: rate,
                    cap_bps: f.cap_bps,
                });
            }
            if !f.remaining.is_finite()
                || f.remaining < -ABS_TOL_BPS
                || f.remaining > f.total_bytes as f64 + 0.5
            {
                return Err(Violation::ByteAccounting {
                    flow: f.id,
                    remaining: f.remaining,
                    total_bytes: f.total_bytes,
                });
            }
            cert.bytes_outstanding += f.remaining.max(0.0);
        }
        // Per-link loads from the persistent crossing indexes. `sat` and
        // `peak` are indexed by raw link id so the bottleneck pass below
        // can look route links up directly.
        // Covers this line and the next:
        let mut sat = vec![false; self.link_caps.len()]; // lint: allow(alloc-in-hot-path) -- certificate validation path, gated by the validate flag
        let mut peak = vec![0.0f64; self.link_caps.len()];
        for &l in links {
            let crossing = &self.link_flows[l as usize];
            let mut used = 0.0f64;
            let mut top = 0.0f64;
            for &slot in crossing {
                let f = self.flows[slot as usize]
                    .as_ref()
                    .expect("per-link index holds a dead slot");
                if f.rate_bps.is_nan() {
                    // A stale crossing flow the solve missed: the
                    // component closure is broken.
                    return Err(Violation::UnsolvedRate { flow: f.id });
                }
                used += f.rate_bps;
                top = top.max(f.rate_bps);
            }
            let cap = self.link_caps[l as usize];
            if used > cap * (1.0 + REL_TOL) + ABS_TOL_BPS {
                return Err(Violation::LinkOversubscribed {
                    link: LinkId(l),
                    allocated_bps: used,
                    capacity_bps: cap,
                });
            }
            if !crossing.is_empty() {
                cert.links_in_use += 1;
                if cap > ABS_TOL_BPS {
                    cert.max_utilization = cert.max_utilization.max(used / cap);
                }
            }
            // A faulted (zero-capacity) link is saturated at zero: flows
            // stalled on it are correctly rate-0, not starved.
            if cap <= ABS_TOL_BPS || used >= cap * (1.0 - REL_TOL) - ABS_TOL_BPS {
                sat[l as usize] = true;
                if !crossing.is_empty() {
                    cert.saturated_links += 1;
                }
            }
            peak[l as usize] = top;
        }
        // Bottleneck certificate: every flow below its cap must cross a
        // saturated link on which no other flow gets a strictly larger
        // share — otherwise its rate could be raised without hurting a
        // smaller-or-equal flow, and the allocation is not max-min fair.
        for &slot in slots {
            let f = self.flows[slot as usize]
                .as_ref()
                .expect("verification scope holds a dead slot");
            if f.rate_bps >= f.cap_bps * (1.0 - REL_TOL) - ABS_TOL_BPS {
                cert.capped_flows += 1;
                continue;
            }
            let witnessed = f.route.iter().any(|&l| {
                sat[l.index()] && f.rate_bps >= peak[l.index()] * (1.0 - REL_TOL) - ABS_TOL_BPS
            });
            if witnessed {
                cert.bottlenecked_flows += 1;
            } else {
                return Err(Violation::NotBottlenecked {
                    flow: f.id,
                    rate_bps: f.rate_bps,
                });
            }
        }
        Ok(cert)
    }

    /// Debug/validate-mode hook: re-certify a freshly solved scope and
    /// abort loudly on any falsification — a wrong allocation must never
    /// settle a byte.
    ///
    /// # Panics
    ///
    /// Panics if the certificate does not hold.
    fn enforce_certificate(&self, slots: &[u32], links: &[u32]) {
        if let Err(v) = self.verify_scope(slots, links) {
            panic!("max-min certificate violated after solve: {v}");
        }
    }

    /// Round-trip time between two nodes.
    ///
    /// # Panics
    ///
    /// Panics if the nodes are not connected.
    pub fn rtt(&self, src: NodeId, dst: NodeId) -> SimDuration {
        self.routing
            .rtt(src, dst)
            .unwrap_or_else(|| panic!("no route {src} -> {dst}"))
    }

    /// Number of currently active flows (including background).
    pub fn active_flow_count(&self) -> usize {
        self.active_flows
    }

    /// Number of currently active **foreground** flows — everything except
    /// [`FlowTag::Background`] traffic, which runs for the whole
    /// simulation. Zero once every user transfer has drained.
    pub fn public_flow_count(&self) -> usize {
        self.public_flows
    }

    /// Number of currently active flows carrying `tag`. Unlike the cached
    /// [`NetSim::public_flow_count`], this scans the flow slab, so it can
    /// separate lingering [`FlowTag::Probe`] measurements from genuine
    /// [`FlowTag::User`] transfers.
    pub fn flow_count_by_tag(&self, tag: FlowTag) -> usize {
        self.flows.iter().flatten().filter(|f| f.tag == tag).count()
    }

    /// Lifetime engine counters (events, timers, flows, bytes, solves).
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Total element capacity held by the reusable scratch structures: the
    /// flow slab, free list, per-link flow indexes, stamped component
    /// walkers and solver buffers (both the settle path's and the probe's).
    ///
    /// This is the high-water mark left behind by the busiest moment the
    /// engine has seen; pair with [`NetSim::shrink_scratch`] to measure and
    /// reclaim it between workload sweeps.
    pub fn scratch_footprint(&self) -> usize {
        let probe = self.probe.borrow();
        self.flows.capacity()
            + self.free_slots.capacity()
            + self
                .link_flows
                .iter()
                .map(std::vec::Vec::capacity)
                .sum::<usize>()
            + self.comp.footprint()
            + self.solver.scratch_capacity()
            + probe.comp.footprint()
            + probe.solver.scratch_capacity()
        // The transition validator's snapshot buffer is deliberately NOT
        // counted: validation must stay invisible to every exported
        // surface except its own audit counters, and this footprint
        // feeds benchmark reports that are diffed across validation
        // on/off runs. (`shrink_scratch` still releases it.)
    }

    /// Compacts the engine's reusable scratch back toward the *current*
    /// flow population.
    ///
    /// The slab, stamp arrays and solver buffers only ever grow with the
    /// peak concurrent slot/link count (see `CompScratch::begin`); a burst
    /// of thousands of flows leaves that capacity allocated forever. This
    /// hook — intended to run between replay sweeps, when the grid is
    /// (near-)idle — trims trailing free slots from the slab, truncates the
    /// stamp arrays to the surviving slot count and releases the worklist
    /// and solver buffers. Live flows are untouched: slot indices of
    /// retained flows never change, so the per-link indexes and any
    /// in-flight completions stay valid, and every buffer regrows on
    /// demand.
    pub fn shrink_scratch(&mut self) {
        // Pop trailing empty slots; interior empties must stay (their
        // indices are burned into `free_slots` and `link_flows` ordering).
        while matches!(self.flows.last(), Some(None)) {
            self.flows.pop();
        }
        let slots = self.flows.len();
        self.free_slots.retain(|&s| (s as usize) < slots);
        self.flows.shrink_to_fit();
        self.free_slots.shrink_to_fit();
        for per_link in &mut self.link_flows {
            per_link.shrink_to_fit();
        }
        let links = self.link_caps.len();
        self.comp.shrink(slots, links);
        self.solver.shrink();
        self.trans.entries = Vec::new(); // lint: allow(alloc-in-hot-path) -- alloc-free capacity release
        let mut probe = self.probe.borrow_mut();
        probe.comp.shrink(slots, links);
        probe.solver.shrink();
    }

    /// Installs a background traffic profile; the first arrival is
    /// scheduled immediately (with an exponential offset).
    ///
    /// # Panics
    ///
    /// Panics if the profile endpoints are not connected.
    pub fn add_background(&mut self, profile: BackgroundProfile) {
        assert!(
            self.routing.path(profile.src, profile.dst).is_some(),
            "background endpoints not connected"
        );
        let idx = self.background.len();
        let mut rng = self.rng_root.fork(&format!(
            "bg:{}:{}:{}",
            idx,
            profile.src.index(),
            profile.dst.index()
        ));
        let first = self.now + SimDuration::from_secs_f64(rng.exponential(profile.arrival_rate_hz));
        self.background.push((profile, rng));
        self.queue
            .push(first, Internal::BackgroundArrival { profile: idx });
    }

    /// Installs a fault plan: every scheduled fault is applied at its start
    /// time and reverted at its end time, with a
    /// [`EventKind::FaultChanged`] notification for each transition.
    ///
    /// Multiple plans may be installed; faults compose (capacity factors
    /// multiply on overlapping windows). Fault transitions alone do not
    /// count as public work: like background traffic, a simulation with
    /// only faults pending reports no events from [`NetSim::next_event`].
    ///
    /// # Panics
    ///
    /// Panics if a fault is scheduled in the simulated past or references a
    /// link or node outside the topology.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        for f in plan.iter() {
            assert!(
                f.at >= self.now,
                "fault scheduled in the past: {} < {}",
                f.at,
                self.now
            );
            match f.kind {
                FaultKind::LinkDown { link } | FaultKind::LinkBrownout { link, .. } => {
                    assert!(link.index() < self.link_caps.len(), "unknown link {link}");
                }
                FaultKind::HostBlackout { node }
                | FaultKind::HostDegraded { node, .. }
                | FaultKind::ConnectionDrop { node } => {
                    assert!(node.index() < self.topo.node_count(), "unknown node {node}");
                }
            }
        }
        for fault in plan.into_faults() {
            let index = self.faults.len();
            self.queue
                .push(fault.at, Internal::FaultTransition { index, start: true });
            if !fault.kind.is_instant() {
                self.queue.push(
                    fault.ends(),
                    Internal::FaultTransition {
                        index,
                        start: false,
                    },
                );
            }
            self.faults.push(FaultRecord {
                fault,
                active: false,
            });
        }
    }

    /// The current effective capacity of a directed link, after any active
    /// faults.
    ///
    /// # Panics
    ///
    /// Panics if the link does not exist.
    pub fn link_capacity(&self, link: LinkId) -> Bandwidth {
        Bandwidth::from_bps(self.link_caps[link.index()])
    }

    /// Number of faults currently active.
    pub fn active_fault_count(&self) -> usize {
        self.faults.iter().filter(|f| f.active).count()
    }

    /// Recomputes every link's effective capacity as its nominal capacity
    /// times the product of all active fault factors touching it.
    fn apply_fault_capacities(&mut self) {
        let NetSim {
            faults,
            link_caps,
            topo,
            ..
        } = self;
        for (i, cap) in link_caps.iter_mut().enumerate() {
            *cap = topo.link_spec(LinkId::from_index(i)).capacity.as_bps();
        }
        for rec in faults.iter().filter(|f| f.active) {
            match rec.fault.kind {
                FaultKind::LinkDown { link } => link_caps[link.index()] = 0.0,
                FaultKind::LinkBrownout { link, factor } => {
                    link_caps[link.index()] *= factor;
                }
                FaultKind::HostBlackout { node } => {
                    for l in topo.incident_links(node) {
                        link_caps[l.index()] = 0.0;
                    }
                }
                FaultKind::HostDegraded { node, factor } => {
                    for l in topo.incident_links(node) {
                        link_caps[l.index()] *= factor;
                    }
                }
                FaultKind::ConnectionDrop { .. } => {}
            }
        }
    }

    /// Starts a flow now; returns its id. Completion is announced through
    /// [`NetSim::next_event`] (except for background flows).
    ///
    /// Zero-byte flows complete immediately; drivers model message latency
    /// with timers (see [`NetSim::schedule_timer_after`]).
    ///
    /// # Panics
    ///
    /// Panics if the endpoints are not connected.
    pub fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        let route = self
            .routing
            .path(spec.src, spec.dst)
            .unwrap_or_else(|| panic!("no route {} -> {}", spec.src, spec.dst))
            .links_shared();
        if matches!(spec.tag, FlowTag::Background) {
            self.stats.background_flows_started += 1;
        } else {
            self.stats.flows_started += 1;
            self.public_flows += 1;
        }
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        let state = FlowState {
            id,
            src: spec.src,
            dst: spec.dst,
            route: Arc::clone(&route),
            total_bytes: spec.bytes,
            remaining: spec.bytes as f64,
            cap_bps: spec.cap.map_or(f64::INFINITY, Bandwidth::as_bps),
            rate_bps: f64::NAN,
            started: self.now,
            last_update: self.now,
            epoch: 0,
            tag: spec.tag,
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                debug_assert!(self.flows[s as usize].is_none(), "free slot occupied");
                self.flows[s as usize] = Some(state);
                s
            }
            None => {
                self.flows.push(Some(state));
                u32::try_from(self.flows.len() - 1).expect("too many concurrent flows")
            }
        };
        for &l in route.iter() {
            self.link_flows[l.index()].push(slot);
        }
        self.id_slots.insert(id, slot);
        self.net_version += 1;
        self.active_flows += 1;
        if self.active_flows > self.slot_high_water {
            self.slot_high_water = self.active_flows;
        }
        self.reallocate_for_flow(slot as usize);
        id
    }

    /// Aborts an active flow, returning its progress, or `None` if the flow
    /// is not active (already completed or aborted).
    pub fn abort_flow(&mut self, id: FlowId) -> Option<FlowProgress> {
        let &slot = self.id_slots.get(&id)?;
        let slot = slot as usize;
        self.settle_flow(slot);
        let f = self.remove_flow(slot);
        self.reallocate_after_removal(&f.route);
        Some(FlowProgress {
            bytes_done: f.total_bytes as f64 - f.remaining,
            bytes_remaining: f.remaining,
            rate: Bandwidth::from_bps(f.rate_bps),
        })
    }

    /// Changes the rate ceiling of an active flow (e.g. an endpoint's disk
    /// got busier). Returns `false` if the flow is no longer active.
    pub fn set_flow_cap(&mut self, id: FlowId, cap: Bandwidth) -> bool {
        let Some(&slot) = self.id_slots.get(&id) else {
            return false;
        };
        let slot = slot as usize;
        self.flows[slot]
            .as_mut()
            .expect("indexed flow is live")
            .cap_bps = cap.as_bps();
        self.net_version += 1;
        self.reallocate_for_flow(slot);
        true
    }

    /// The rate currently allocated to a flow, if it is active.
    pub fn flow_rate(&self, id: FlowId) -> Option<Bandwidth> {
        let &slot = self.id_slots.get(&id)?;
        let f = self.flows[slot as usize]
            .as_ref()
            .expect("indexed flow is live");
        Some(Bandwidth::from_bps(f.rate_bps))
    }

    /// Schedules a timer to fire at absolute time `at` with a caller token.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn schedule_timer(&mut self, at: SimTime, token: u64) {
        assert!(at >= self.now, "timer in the past: {at} < {}", self.now);
        self.pending_timers += 1;
        self.queue.push(at, Internal::Timer { token });
    }

    /// Schedules a timer `after` from now.
    pub fn schedule_timer_after(&mut self, after: SimDuration, token: u64) {
        self.pending_timers += 1;
        self.queue.push(self.now + after, Internal::Timer { token });
    }

    /// The bandwidth a hypothetical new single stream with ceiling `cap`
    /// would receive right now between `src` and `dst` — what an NWS
    /// bandwidth sensor observes. Does not disturb existing flows.
    ///
    /// Called per candidate during replica ranking, so it is allocation
    /// free: the phantom flow is solved over the probe path's connected
    /// component only, on scratch buffers reused across calls.
    ///
    /// Returns [`Bandwidth::ZERO`] when the nodes are not connected.
    pub fn available_bandwidth(
        &self,
        src: NodeId,
        dst: NodeId,
        cap: Option<Bandwidth>,
    ) -> Bandwidth {
        let Some(path) = self.routing.path(src, dst) else {
            return Bandwidth::ZERO;
        };
        if path.links().is_empty() {
            // Node-local: bounded only by the cap.
            return cap.unwrap_or(Bandwidth::from_bps(1e15));
        }
        let mut probe = self.probe.borrow_mut();
        let ProbeScratch { comp, solver } = &mut *probe;
        comp.begin(self.flows.len(), self.link_caps.len());
        for &l in path.links() {
            comp.add_link(l);
        }
        comp.expand(&self.flows, &self.link_flows);
        let n = comp.flows.len();
        let flows = &self.flows;
        let comp_flows = &comp.flows;
        let phantom_cap = cap.map_or(f64::INFINITY, Bandwidth::as_bps);
        let rates = solver.solve_with(
            n + 1,
            |i| {
                if i < comp_flows.len() {
                    flows[comp_flows[i] as usize]
                        .as_ref()
                        .expect("indexed flow is live")
                        .route
                        .as_ref()
                } else {
                    path.links()
                }
            },
            |i| {
                if i < comp_flows.len() {
                    flows[comp_flows[i] as usize]
                        .as_ref()
                        .expect("indexed flow is live")
                        .cap_bps
                } else {
                    phantom_cap
                }
            },
            &comp.links,
            &self.link_caps,
        );
        Bandwidth::from_bps(rates[n])
    }

    /// Instantaneous utilisation (0–1) of a directed link. O(flows crossing
    /// the link) via the per-link index.
    ///
    /// # Panics
    ///
    /// Panics if the link does not exist.
    pub fn link_utilization(&self, link: LinkId) -> f64 {
        let cap = self.link_caps[link.index()];
        if cap <= 0.0 {
            return 0.0;
        }
        let used: f64 = self.link_flows[link.index()]
            .iter()
            .map(|&s| {
                self.flows[s as usize]
                    .as_ref()
                    .expect("indexed flow is live")
                    .rate_bps
            })
            .sum();
        // Solver arithmetic can leave a -0.0 residue on idle links.
        (used / cap).max(0.0)
    }

    /// Write every link's instantaneous utilisation (0–1) into `out`, in
    /// link-index order, reusing the caller's buffer. One deterministic
    /// pass for timeline sampling, instead of per-link calls.
    pub fn link_utilizations_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.link_caps.len());
        for index in 0..self.link_caps.len() {
            out.push(self.link_utilization(LinkId::from_index(index)));
        }
    }

    /// Returns the next public event, advancing simulated time.
    ///
    /// Returns `None` when no public event can ever arrive: no user or
    /// probe flow is active and no timer is pending. (Background traffic
    /// alone never produces public events, so the engine refuses to spin on
    /// it forever.)
    // lint: hot-path
    pub fn next_event(&mut self) -> Option<SimEvent> {
        loop {
            if let Some(ev) = self.pending.pop_front() {
                return Some(ev);
            }
            // Guard against a pure-background simulation spinning forever:
            // if no user/probe flow is active and no timer is pending, stop.
            if !self.has_public_work() {
                return None;
            }
            let (time, internal) = self.queue.pop()?;
            debug_assert!(time >= self.now, "event queue went backwards");
            self.now = time;
            if self.batching && self.queue.peek_time() == Some(time) {
                self.handle_cohort(time, internal);
            } else {
                self.handle(internal);
            }
        }
    }

    /// Processes everything scheduled up to and including `until`, returning
    /// the public events that occurred. Afterwards `now() == until` (or
    /// later if it already was).
    pub fn run_until(&mut self, until: SimTime) -> Vec<SimEvent> {
        let mut events = Vec::new();
        loop {
            events.extend(self.pending.drain(..));
            match self.queue.peek_time() {
                Some(t) if t <= until => {
                    let (time, internal) = self.queue.pop().expect("peeked");
                    self.now = time;
                    if self.batching && self.queue.peek_time() == Some(time) {
                        self.handle_cohort(time, internal);
                    } else {
                        self.handle(internal);
                    }
                }
                _ => break,
            }
        }
        events.extend(self.pending.drain(..));
        if self.now < until {
            self.now = until;
        }
        events
    }

    /// `true` while any user/probe flow is active or any timer is pending.
    fn has_public_work(&self) -> bool {
        self.pending_timers > 0 || self.public_flows > 0
    }

    /// Handles a same-instant cohort: `first` plus every queued event
    /// sharing its timestamp, with all per-event solves deferred into one
    /// batched solve at the end. Flow mutations (slab inserts/removals,
    /// capacity changes, RNG draws) still apply eagerly in pop order, so
    /// everything except solve scheduling is identical to the per-event
    /// path.
    fn handle_cohort(&mut self, time: SimTime, first: Internal) {
        self.stats.event_cohorts += 1;
        self.begin_batch();
        self.handle(first);
        while self.queue.peek_time() == Some(time) {
            let (_, internal) = self.queue.pop().expect("peeked same-time event");
            self.handle(internal);
        }
        self.end_batch();
    }

    fn begin_batch(&mut self) {
        debug_assert!(!self.batch_active, "nested cohort");
        self.batch_active = true;
        self.batch_deferred = 0;
        if matches!(self.mode, SolverMode::Incremental) {
            self.comp.begin(self.flows.len(), self.link_caps.len());
        }
    }

    /// Runs the one solve the cohort deferred (if any events actually
    /// perturbed flows — timer-only cohorts defer nothing).
    fn end_batch(&mut self) {
        debug_assert!(self.batch_active, "end_batch outside a cohort");
        self.batch_active = false;
        let deferred = self.batch_deferred;
        self.batch_deferred = 0;
        if deferred == 0 {
            return;
        }
        match self.mode {
            SolverMode::Full => self.resolve_everything(),
            SolverMode::Incremental => {
                // Slots seeded by an arrival and freed again within the
                // same cohort (drops, instant completions) are dead now.
                let flows = &self.flows;
                self.comp.flows.retain(|&s| flows[s as usize].is_some());
                self.comp.expand(&self.flows, &self.link_flows);
                self.solve_component();
            }
        }
        if deferred > 1 {
            self.stats.batched_solves += 1;
            self.stats.solves_avoided += deferred - 1;
        }
        // The low-water compaction was suppressed while the cohort was
        // open (it would have clobbered the deferred worklists); re-check
        // it now that the batch has solved.
        self.maybe_auto_shrink();
    }

    /// Defers the re-solve for a flow that appeared or changed caps while
    /// a cohort is open. Seeds the route links directly (not just the
    /// slot): if the slot was already seeded by a previous occupant this
    /// cohort, the stamp dedup would otherwise skip the new occupant's
    /// (possibly different) route.
    fn defer_flow_seed(&mut self, slot: usize) {
        self.batch_deferred += 1;
        if matches!(self.mode, SolverMode::Full) {
            return;
        }
        self.comp.ensure_flows(self.flows.len());
        let route = Arc::clone(
            &self.flows[slot]
                .as_ref()
                .expect("deferred seed of dead slot")
                .route,
        );
        for &l in route.iter() {
            self.comp.add_link(l);
        }
        self.comp.add_flow(slot as u32, &self.flows);
    }

    /// Defers the re-solve for a flow that disappeared while a cohort is
    /// open; its route links seed the batched component walk.
    fn defer_removal_seed(&mut self, route: &[LinkId]) {
        self.batch_deferred += 1;
        if matches!(self.mode, SolverMode::Full) {
            return;
        }
        for &l in route {
            self.comp.add_link(l);
        }
    }

    /// Re-checks the low-water compaction trigger (see
    /// [`NetSim::set_auto_shrink`]).
    fn maybe_auto_shrink(&mut self) {
        if self.auto_shrink
            && self.slot_high_water >= AUTO_SHRINK_MIN_HIGH_WATER
            && self.active_flows * 4 < self.slot_high_water
        {
            self.shrink_scratch();
            self.stats.auto_shrinks += 1;
            self.slot_high_water = self.active_flows;
        }
    }

    fn handle(&mut self, internal: Internal) {
        self.stats.events_processed += 1;
        match internal {
            Internal::Timer { token } => {
                self.pending_timers -= 1;
                self.stats.timers_fired += 1;
                self.pending.push_back(SimEvent {
                    time: self.now,
                    kind: EventKind::TimerFired(token),
                });
            }
            Internal::Completion { slot, epoch } => {
                let slot = slot as usize;
                let Some(f) = self.flows.get(slot).and_then(Option::as_ref) else {
                    return; // flow already gone (aborted/dropped/slot freed)
                };
                if f.epoch != epoch {
                    return; // stale: the flow's rate changed since this was scheduled
                }
                self.settle_flow(slot);
                if self.flows[slot].as_ref().expect("checked live").remaining > 0.5 {
                    // Rounding left a sliver; reschedule precisely.
                    self.schedule_completion(slot);
                    return;
                }
                let f = self.remove_flow(slot);
                if !matches!(f.tag, FlowTag::Background) {
                    self.stats.flows_completed += 1;
                    self.stats.bytes_completed += f.total_bytes;
                    self.pending.push_back(SimEvent {
                        time: self.now,
                        kind: EventKind::FlowCompleted(FlowCompletion {
                            id: f.id,
                            src: f.src,
                            dst: f.dst,
                            bytes: f.total_bytes,
                            started: f.started,
                            finished: self.now,
                            tag: f.tag,
                        }),
                    });
                }
                self.reallocate_after_removal(&f.route);
            }
            Internal::BackgroundArrival { profile } => {
                let (p, rng) = &mut self.background[profile];
                let size = if p.size_sigma > 0.0 {
                    rng.lognormal_with_mean(p.mean_size_bytes, p.size_sigma)
                } else {
                    p.mean_size_bytes
                };
                let next =
                    self.now + SimDuration::from_secs_f64(rng.exponential(p.arrival_rate_hz));
                let spec = FlowSpec {
                    src: p.src,
                    dst: p.dst,
                    bytes: size.max(1.0) as u64,
                    cap: p.flow_cap,
                    tag: FlowTag::Background,
                };
                self.queue
                    .push(next, Internal::BackgroundArrival { profile });
                let _ = self.start_flow(spec);
            }
            Internal::FaultTransition { index, start } => {
                self.stats.fault_transitions += 1;
                let kind = self.faults[index].fault.kind;
                self.faults[index].active = start && !kind.is_instant();
                let mut drop_seeds = Vec::new(); // lint: allow(alloc-in-hot-path) -- fault path, not steady dispatch
                if let FaultKind::ConnectionDrop { node } = kind {
                    drop_seeds = self.drop_connections_through(node);
                }
                self.cap_snapshot.clear();
                self.cap_snapshot.extend_from_slice(&self.link_caps);
                self.apply_fault_capacities();
                self.net_version += 1;
                if self.batch_active {
                    self.batch_deferred += 1;
                    if matches!(self.mode, SolverMode::Incremental) {
                        for &l in &drop_seeds {
                            self.comp.add_link(l);
                        }
                        for i in 0..self.link_caps.len() {
                            if self.link_caps[i] != self.cap_snapshot[i] {
                                self.comp.add_link(LinkId::from_index(i));
                            }
                        }
                    }
                } else {
                    match self.mode {
                        SolverMode::Full => self.resolve_everything(),
                        SolverMode::Incremental => {
                            self.comp.begin(self.flows.len(), self.link_caps.len());
                            for &l in &drop_seeds {
                                self.comp.add_link(l);
                            }
                            for i in 0..self.link_caps.len() {
                                if self.link_caps[i] != self.cap_snapshot[i] {
                                    self.comp.add_link(LinkId::from_index(i));
                                }
                            }
                            self.comp.expand(&self.flows, &self.link_flows);
                            self.solve_component();
                        }
                    }
                }
                self.pending.push_back(SimEvent {
                    time: self.now,
                    kind: EventKind::FaultChanged(FaultNotice {
                        index,
                        kind,
                        active: start,
                    }),
                });
            }
        }
    }

    /// Removes every active flow whose source, destination or route touches
    /// `node`, returning the union of their route links (the seeds for the
    /// incremental re-solve). Reset flows vanish without a completion event
    /// — exactly like a TCP connection killed by a crashing peer; drivers
    /// detect the loss through their own timeouts.
    fn drop_connections_through(&mut self, node: NodeId) -> Vec<LinkId> {
        let incident = self.topo.incident_links(node);
        let mut victims: Vec<u32> = Vec::new(); // lint: allow(alloc-in-hot-path) -- fault path, not steady dispatch
        for (slot, f) in self.flows.iter().enumerate() {
            let Some(f) = f else { continue };
            if f.src == node || f.dst == node || f.route.iter().any(|l| incident.contains(l)) {
                victims.push(slot as u32);
            }
        }
        let mut seeds: Vec<LinkId> = Vec::new(); // lint: allow(alloc-in-hot-path) -- fault path, not steady dispatch
        for &slot in &victims {
            let f = self.remove_flow(slot as usize);
            seeds.extend_from_slice(&f.route);
        }
        self.stats.flows_dropped += victims.len() as u64;
        seeds
    }

    /// Advances one flow's byte counter to `self.now`. Lazy counterpart of
    /// the old settle-the-world pass: exact because a flow's rate is
    /// constant between rate assignments, so integration can be deferred
    /// until the rate is about to change or progress is read.
    // lint: hot-path
    fn settle_flow(&mut self, slot: usize) {
        let now = self.now;
        let f = self.flows[slot].as_mut().expect("settle of dead slot");
        let dt = (now - f.last_update).as_secs_f64();
        if dt > 0.0 {
            f.remaining = (f.remaining - f.rate_bps / 8.0 * dt).max(0.0);
        }
        f.last_update = now;
    }

    /// Unlinks a flow from the slab, the id map and every per-link index.
    fn remove_flow(&mut self, slot: usize) -> FlowState {
        let f = self.flows[slot].take().expect("remove of dead slot");
        self.id_slots.remove(&f.id);
        for &l in f.route.iter() {
            let lf = &mut self.link_flows[l.index()];
            let pos = lf
                .iter()
                .position(|&s| s as usize == slot)
                .expect("flow indexed on its route links");
            lf.swap_remove(pos);
        }
        self.free_slots.push(slot as u32);
        self.net_version += 1;
        self.active_flows -= 1;
        if !matches!(f.tag, FlowTag::Background) {
            self.public_flows -= 1;
        }
        // Low-water trigger: a burst that grew the scratch has drained far
        // enough that keeping its high-water capacity is pure waste. Not
        // while a cohort is open — compaction would clobber the deferred
        // component worklists; `end_batch` re-checks.
        if !self.batch_active {
            self.maybe_auto_shrink();
        }
        f
    }

    /// Re-solves after `slot` appeared or changed caps: its connected
    /// component in incremental mode, everything in full mode.
    fn reallocate_for_flow(&mut self, slot: usize) {
        if self.batch_active {
            self.defer_flow_seed(slot);
            return;
        }
        match self.mode {
            SolverMode::Full => self.resolve_everything(),
            SolverMode::Incremental => {
                self.comp.begin(self.flows.len(), self.link_caps.len());
                self.comp.add_flow(slot as u32, &self.flows);
                self.comp.expand(&self.flows, &self.link_flows);
                self.solve_component();
            }
        }
    }

    /// Re-solves after a flow on `route` disappeared (completion, abort).
    fn reallocate_after_removal(&mut self, route: &[LinkId]) {
        if self.batch_active {
            self.defer_removal_seed(route);
            return;
        }
        match self.mode {
            SolverMode::Full => self.resolve_everything(),
            SolverMode::Incremental => {
                self.comp.begin(self.flows.len(), self.link_caps.len());
                for &l in route {
                    self.comp.add_link(l);
                }
                self.comp.expand(&self.flows, &self.link_flows);
                self.solve_component();
            }
        }
    }

    /// Runs progressive filling over the component currently held in
    /// `self.comp`, then settles and reschedules exactly the flows whose
    /// rate actually changed.
    // lint: hot-path
    fn solve_component(&mut self) {
        let n = self.comp.flows.len();
        if n == 0 {
            return;
        }
        if self.validate {
            self.snapshot_transition();
        }
        self.stats.incremental_solves += 1;
        self.stats.solver_flows_touched += n as u64;
        {
            let flows = &self.flows;
            let comp_flows = &self.comp.flows;
            self.solver.solve_with(
                n,
                |i| {
                    flows[comp_flows[i] as usize]
                        .as_ref()
                        .expect("component flow is live")
                        .route
                        .as_ref()
                },
                |i| {
                    flows[comp_flows[i] as usize]
                        .as_ref()
                        .expect("component flow is live")
                        .cap_bps
                },
                &self.comp.links,
                &self.link_caps,
            );
        }
        for i in 0..n {
            let slot = self.comp.flows[i] as usize;
            let new_rate = self.solver.rate(i);
            let f = self.flows[slot].as_ref().expect("component flow is live");
            // NAN (never solved) compares unequal to everything, so a new
            // flow always falls through to scheduling.
            if f.rate_bps == new_rate {
                continue;
            }
            let old_rate = f.rate_bps;
            self.settle_flow(slot);
            let f = self.flows[slot].as_mut().expect("component flow is live");
            if old_rate > 0.0 && f.remaining <= 0.5 {
                // Already due: a progressing flow whose bytes ran out still
                // has its completion entry for this instant queued under
                // the current epoch. Record the new rate (the certificate
                // must see solved rates) but keep the epoch, so the entry
                // pops in its original order — this keeps the public
                // timeline identical between the batched-cohort and
                // per-event paths.
                f.rate_bps = new_rate;
                continue;
            }
            self.epoch += 1;
            let epoch = self.epoch;
            let f = self.flows[slot].as_mut().expect("component flow is live");
            f.rate_bps = new_rate;
            f.epoch = epoch;
            self.schedule_completion(slot);
        }
        if self.validate {
            self.enforce_transition(false);
            self.enforce_certificate(&self.comp.flows, &self.comp.links);
        }
    }

    /// Full-mode baseline: settle every flow, solve the whole grid from
    /// scratch, reschedule every completion — the engine's behaviour
    /// before per-link indexes.
    fn resolve_everything(&mut self) {
        if self.validate {
            self.snapshot_transition();
        }
        self.stats.full_solves += 1;
        self.stats.solver_flows_touched += self.active_flows as u64;
        self.comp.begin(self.flows.len(), self.link_caps.len());
        for slot in 0..self.flows.len() {
            if self.flows[slot].is_some() {
                self.settle_flow(slot);
                self.comp.flows.push(slot as u32);
            }
        }
        let n = self.comp.flows.len();
        {
            let flows = &self.flows;
            let comp_flows = &self.comp.flows;
            self.solver.solve_with(
                n,
                |i| {
                    flows[comp_flows[i] as usize]
                        .as_ref()
                        .expect("live flow")
                        .route
                        .as_ref()
                },
                |i| {
                    flows[comp_flows[i] as usize]
                        .as_ref()
                        .expect("live flow")
                        .cap_bps
                },
                &self.all_links,
                &self.link_caps,
            );
        }
        self.epoch += 1;
        let epoch = self.epoch;
        for i in 0..n {
            let slot = self.comp.flows[i] as usize;
            let rate = self.solver.rate(i);
            let f = self.flows[slot].as_mut().expect("live flow");
            if f.rate_bps > 0.0 && f.remaining <= 0.5 {
                // Already due (see `solve_component`): keep the queued
                // completion entry so pop order matches the batched path.
                f.rate_bps = rate;
                continue;
            }
            f.rate_bps = rate;
            f.epoch = epoch;
            self.schedule_completion(slot);
        }
        if self.validate {
            self.enforce_transition(true);
            self.enforce_certificate(&self.comp.flows, &self.all_links);
        }
    }

    fn schedule_completion(&mut self, slot: usize) {
        let f = self.flows[slot].as_ref().expect("schedule of dead slot");
        let when = if f.remaining <= 0.5 {
            // Effectively done; deliver after the path's residual latency 0
            // (bytes already in flight are abstracted away by the fluid
            // model).
            self.now
        } else if f.rate_bps > 0.0 {
            self.now + SimDuration::from_secs_f64(f.remaining / (f.rate_bps / 8.0))
        } else {
            return; // stalled; a future reallocation will reschedule
        };
        let epoch = f.epoch;
        self.queue.push(
            when,
            Internal::Completion {
                slot: slot as u32,
                epoch,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkSpec;

    fn mbps(m: f64) -> Bandwidth {
        Bandwidth::from_mbps(m)
    }

    fn ms(m: u64) -> SimDuration {
        SimDuration::from_millis(m)
    }

    /// a --100Mbps-- b --100Mbps-- c
    fn line() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        t.add_duplex_link(a, b, LinkSpec::new(mbps(100.0), ms(1)));
        t.add_duplex_link(b, c, LinkSpec::new(mbps(100.0), ms(1)));
        (t, a, b, c)
    }

    #[test]
    fn single_flow_completes_at_capacity() {
        let (t, a, _, c) = line();
        let mut sim = NetSim::new(t, 1);
        // 100 Mbps = 12.5 MB/s; 12.5 MB should take 1 s.
        let id = sim.start_flow(FlowSpec::new(a, c, 12_500_000));
        let ev = sim.next_event().expect("completion");
        match ev.kind {
            EventKind::FlowCompleted(done) => {
                assert_eq!(done.id, id);
                assert_eq!(done.bytes, 12_500_000);
                let secs = done.duration().as_secs_f64();
                assert!((secs - 1.0).abs() < 1e-6, "took {secs}");
                assert!((done.avg_throughput().as_mbps() - 100.0).abs() < 1e-3);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(sim.active_flow_count(), 0);
    }

    #[test]
    fn stats_count_flows_timers_and_bytes() {
        let (t, a, _, c) = line();
        let mut sim = NetSim::new(t, 1);
        assert_eq!(sim.stats(), EngineStats::default());
        sim.start_flow(FlowSpec::new(a, c, 12_500_000));
        sim.schedule_timer_after(ms(100), 7);
        while sim.next_event().is_some() {}
        let stats = sim.stats();
        assert_eq!(stats.flows_started, 1);
        assert_eq!(stats.flows_completed, 1);
        assert_eq!(stats.timers_fired, 1);
        assert_eq!(stats.bytes_completed, 12_500_000);
        assert_eq!(stats.background_flows_started, 0);
        assert!(stats.events_processed >= 2);
    }

    #[test]
    fn flow_cap_limits_rate() {
        let (t, a, _, c) = line();
        let mut sim = NetSim::new(t, 1);
        sim.start_flow(FlowSpec::new(a, c, 12_500_000).with_cap(mbps(50.0)));
        let ev = sim.next_event().unwrap();
        match ev.kind {
            EventKind::FlowCompleted(done) => {
                assert!((done.duration().as_secs_f64() - 2.0).abs() < 1e-6);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        let (t, a, _, c) = line();
        let mut sim = NetSim::new(t, 1);
        // Two equal flows share 100 Mbps: each at 50 Mbps. First finishes at
        // 2 s (12.5 MB at 6.25 MB/s); second then runs alone.
        let f1 = sim.start_flow(FlowSpec::new(a, c, 12_500_000));
        let f2 = sim.start_flow(FlowSpec::new(a, c, 25_000_000));
        assert!((sim.flow_rate(f1).unwrap().as_mbps() - 50.0).abs() < 1e-9);
        let ev1 = sim.next_event().unwrap();
        let EventKind::FlowCompleted(d1) = ev1.kind else {
            panic!("want completion")
        };
        assert_eq!(d1.id, f1);
        assert!((d1.duration().as_secs_f64() - 2.0).abs() < 1e-6);
        // f2: 25 MB total; 12.5 MB done in the first 2 s, the rest at full
        // 12.5 MB/s takes 1 s more.
        let ev2 = sim.next_event().unwrap();
        let EventKind::FlowCompleted(d2) = ev2.kind else {
            panic!("want completion")
        };
        assert_eq!(d2.id, f2);
        assert!(
            (d2.finished.as_secs_f64() - 3.0).abs() < 1e-6,
            "{}",
            d2.finished
        );
    }

    #[test]
    fn timers_fire_in_order_with_flows() {
        let (t, a, _, c) = line();
        let mut sim = NetSim::new(t, 1);
        sim.schedule_timer(SimTime::from_secs_f64(0.5), 7);
        sim.start_flow(FlowSpec::new(a, c, 12_500_000)); // completes at 1 s
        sim.schedule_timer_after(SimDuration::from_secs(2), 9);
        let e1 = sim.next_event().unwrap();
        assert_eq!(e1.kind, EventKind::TimerFired(7));
        assert_eq!(e1.time, SimTime::from_secs_f64(0.5));
        let e2 = sim.next_event().unwrap();
        assert!(matches!(e2.kind, EventKind::FlowCompleted(_)));
        let e3 = sim.next_event().unwrap();
        assert_eq!(e3.kind, EventKind::TimerFired(9));
        assert_eq!(sim.next_event(), None);
    }

    #[test]
    fn abort_reports_progress() {
        let (t, a, _, c) = line();
        let mut sim = NetSim::new(t, 1);
        let id = sim.start_flow(FlowSpec::new(a, c, 12_500_000));
        sim.schedule_timer(SimTime::from_secs_f64(0.4), 1);
        let _ = sim.next_event(); // timer at 0.4 s
        let progress = sim.abort_flow(id).expect("active");
        assert!((progress.bytes_done - 5_000_000.0).abs() < 1.0);
        assert!((progress.bytes_remaining - 7_500_000.0).abs() < 1.0);
        assert_eq!(sim.abort_flow(id), None);
        assert_eq!(sim.next_event(), None); // completion was cancelled
    }

    #[test]
    fn set_flow_cap_takes_effect() {
        let (t, a, _, c) = line();
        let mut sim = NetSim::new(t, 1);
        let id = sim.start_flow(FlowSpec::new(a, c, 12_500_000));
        sim.schedule_timer(SimTime::from_secs_f64(0.5), 1);
        let _ = sim.next_event();
        // Half done at 0.5 s; cap to 25 Mbps -> remaining 6.25 MB at
        // 3.125 MB/s = 2 s more.
        assert!(sim.set_flow_cap(id, mbps(25.0)));
        let ev = sim.next_event().unwrap();
        let EventKind::FlowCompleted(done) = ev.kind else {
            panic!()
        };
        assert!(
            (done.finished.as_secs_f64() - 2.5).abs() < 1e-6,
            "{}",
            done.finished
        );
        assert!(!sim.set_flow_cap(id, mbps(1.0)));
    }

    #[test]
    fn available_bandwidth_accounts_for_active_flows() {
        let (t, a, _, c) = line();
        let mut sim = NetSim::new(t, 1);
        assert!((sim.available_bandwidth(a, c, None).as_mbps() - 100.0).abs() < 1e-9);
        sim.start_flow(FlowSpec::new(a, c, 1_000_000_000));
        // A new flow would share fairly: 50 Mbps.
        assert!((sim.available_bandwidth(a, c, None).as_mbps() - 50.0).abs() < 1e-9);
        // A capped probe reports its cap when below the share.
        let seen = sim.available_bandwidth(a, c, Some(mbps(10.0)));
        assert!((seen.as_mbps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn link_utilization_reflects_rates() {
        let (t, a, _, c) = line();
        let mut sim = NetSim::new(t, 1);
        let path = sim.routing().path(a, c).unwrap().clone();
        sim.start_flow(FlowSpec::new(a, c, 1_000_000).with_cap(mbps(40.0)));
        for l in path.links() {
            assert!((sim.link_utilization(*l) - 0.4).abs() < 1e-9);
        }
    }

    #[test]
    fn background_traffic_slows_user_flow() {
        let (t, a, b, c) = line();
        let mut sim = NetSim::new(t, 42);
        // ~32% offered load on the b->c link direction used by a->c flows.
        sim.add_background(
            BackgroundProfile::new(b, c, 2.0, 2_000_000.0).with_flow_cap(mbps(50.0)),
        );
        let id = sim.start_flow(FlowSpec::new(a, c, 12_500_000));
        let mut done = None;
        while let Some(ev) = sim.next_event() {
            if let EventKind::FlowCompleted(d) = ev.kind {
                if d.id == id {
                    done = Some(d);
                    break;
                }
            }
        }
        let d = done.expect("user flow completes despite background");
        // Alone it would take 1 s; with ~40% utilisation background it must
        // be measurably slower but still finish.
        let secs = d.duration().as_secs_f64();
        assert!(secs > 1.05, "background had no effect: {secs}");
        assert!(secs < 20.0, "background starved the flow: {secs}");
    }

    #[test]
    fn background_alone_yields_no_events() {
        let (t, a, b, _) = line();
        let mut sim = NetSim::new(t, 7);
        sim.add_background(BackgroundProfile::new(a, b, 5.0, 1_000_000.0));
        assert_eq!(sim.next_event(), None);
    }

    #[test]
    fn run_until_advances_clock_and_collects() {
        let (t, a, _, c) = line();
        let mut sim = NetSim::new(t, 1);
        sim.start_flow(FlowSpec::new(a, c, 12_500_000)); // done at 1 s
        sim.schedule_timer(SimTime::from_secs_f64(3.0), 5);
        let events = sim.run_until(SimTime::from_secs_f64(2.0));
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0].kind, EventKind::FlowCompleted(_)));
        assert_eq!(sim.now(), SimTime::from_secs_f64(2.0));
        let events = sim.run_until(SimTime::from_secs_f64(4.0));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::TimerFired(5));
    }

    #[test]
    fn determinism_same_seed_same_timeline() {
        let run = |seed: u64| -> Vec<(u64, u64)> {
            let (t, a, b, c) = line();
            let mut sim = NetSim::new(t, seed);
            sim.add_background(BackgroundProfile::new(b, c, 3.0, 1_500_000.0));
            let mut out = Vec::new();
            for i in 0..5 {
                let id = sim.start_flow(FlowSpec::new(a, c, 4_000_000 + i * 123_456));
                loop {
                    match sim.next_event() {
                        Some(SimEvent {
                            time,
                            kind: EventKind::FlowCompleted(d),
                        }) if d.id == id => {
                            out.push((time.as_nanos(), d.bytes));
                            break;
                        }
                        Some(_) => {}
                        None => panic!("flow never completed"),
                    }
                }
            }
            out
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let (t, a, _, c) = line();
        let mut sim = NetSim::new(t, 1);
        sim.start_flow(FlowSpec::new(a, c, 0));
        let ev = sim.next_event().unwrap();
        assert_eq!(ev.time, SimTime::ZERO);
        assert!(matches!(ev.kind, EventKind::FlowCompleted(_)));
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn unconnected_flow_panics() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let mut sim = NetSim::new(t, 1);
        sim.start_flow(FlowSpec::new(a, b, 10));
    }

    #[test]
    fn probe_flows_emit_completions() {
        let (t, a, _, c) = line();
        let mut sim = NetSim::new(t, 1);
        sim.start_flow(FlowSpec::new(a, c, 500_000).with_tag(FlowTag::Probe));
        let ev = sim.next_event().unwrap();
        let EventKind::FlowCompleted(d) = ev.kind else {
            panic!()
        };
        assert_eq!(d.tag, FlowTag::Probe);
    }

    #[test]
    fn byte_conservation_under_churn() {
        // Start several flows at staggered times; total delivered bytes must
        // equal the sum of sizes when all complete.
        let (t, a, _, c) = line();
        let mut sim = NetSim::new(t, 3);
        let sizes = [3_000_000u64, 5_000_000, 7_000_000, 11_000_000];
        let mut started = 0usize;
        let mut total_done = 0u64;
        sim.start_flow(FlowSpec::new(a, c, sizes[0]));
        started += 1;
        sim.schedule_timer(SimTime::from_secs_f64(0.1), 100);
        let mut completions = 0;
        while let Some(ev) = sim.next_event() {
            match ev.kind {
                EventKind::TimerFired(_) if started < sizes.len() => {
                    sim.start_flow(FlowSpec::new(a, c, sizes[started]));
                    started += 1;
                    sim.schedule_timer_after(SimDuration::from_millis(100), 100);
                }
                EventKind::FlowCompleted(d) => {
                    total_done += d.bytes;
                    completions += 1;
                }
                _ => {}
            }
        }
        assert_eq!(completions, sizes.len());
        assert_eq!(total_done, sizes.iter().sum::<u64>());
    }

    #[test]
    fn shrink_scratch_releases_high_water_capacity() {
        let (t, a, _, c) = line();
        let mut sim = NetSim::new(t, 7);
        // This test measures the *manual* compaction hook, so the
        // automatic low-water trigger must not fire mid-drain.
        sim.set_auto_shrink(false);
        // High-water burst: hundreds of concurrent flows grow the slab,
        // stamp arrays, per-link indexes and solver buffers.
        for i in 0..512 {
            sim.start_flow(FlowSpec::new(a, c, 100_000 + i));
        }
        while sim.next_event().is_some() {}
        assert_eq!(sim.active_flow_count(), 0);
        let high_water = sim.scratch_footprint();
        assert!(
            high_water >= 512,
            "burst should leave capacity behind, got {high_water}"
        );
        sim.shrink_scratch();
        let compacted = sim.scratch_footprint();
        assert!(
            compacted < high_water / 4,
            "shrink_scratch kept {compacted} of {high_water} elements"
        );
        // The engine still works after compaction, and the buffers regrow
        // only to what the new load needs.
        let id = sim.start_flow(FlowSpec::new(a, c, 2_500_000));
        let ev = sim.next_event().expect("flow completes after shrink");
        match ev.kind {
            EventKind::FlowCompleted(d) => {
                assert_eq!(d.id, id);
                assert_eq!(d.bytes, 2_500_000);
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert!(sim.scratch_footprint() < high_water / 4);
    }

    #[test]
    fn shrink_scratch_preserves_live_flows() {
        let (t, a, _, c) = line();
        let mut sim = NetSim::new(t, 11);
        // Burst and drain a large population, then shrink while one flow
        // is still in flight: it must finish with the right byte count.
        for _ in 0..256 {
            sim.start_flow(FlowSpec::new(a, c, 50_000));
        }
        // Identical flows finish at the same instant; drain the whole
        // cohort's completion events, not just until the count hits zero.
        while sim.next_event().is_some() {}
        assert_eq!(sim.active_flow_count(), 0);
        let id = sim.start_flow(FlowSpec::new(a, c, 4_000_000));
        sim.shrink_scratch();
        let mut done = false;
        while let Some(ev) = sim.next_event() {
            if let EventKind::FlowCompleted(d) = ev.kind {
                assert_eq!(d.id, id);
                assert_eq!(d.bytes, 4_000_000);
                done = true;
            }
        }
        assert!(done);
    }

    #[test]
    fn auto_shrink_fires_at_low_water() {
        // Identical 512-flow bursts; only the trigger arming differs.
        let run = |auto: bool| {
            let (t, a, _, c) = line();
            let mut sim = NetSim::new(t, 13);
            sim.set_auto_shrink(auto);
            // Decreasing sizes: the newest slots drain first, so the slab's
            // trailing-slot truncation has something to reclaim (interior
            // holes must keep their indices and can never be compacted).
            for i in 0..512u64 {
                sim.start_flow(FlowSpec::new(a, c, 100_000 + (511 - i) * 1_000));
            }
            while sim.next_event().is_some() {}
            assert_eq!(sim.active_flow_count(), 0);
            (sim, a, c)
        };
        let (control, _, _) = run(false);
        assert_eq!(control.stats().auto_shrinks, 0);
        let (mut sim, a, c) = run(true);
        assert!(
            sim.stats().auto_shrinks >= 1,
            "draining a 512-flow burst should trigger the low-water compaction"
        );
        // The last compaction fires at <25% occupancy, so at most a quarter
        // of the high-water capacity can survive the drain.
        let (auto, manual) = (sim.scratch_footprint(), control.scratch_footprint());
        assert!(
            auto < manual / 2,
            "auto-shrink kept {auto} of the {manual}-element high-water scratch"
        );
        // The engine keeps working after an automatic compaction.
        let id = sim.start_flow(FlowSpec::new(a, c, 1_000_000));
        match sim.next_event().expect("flow completes").kind {
            EventKind::FlowCompleted(d) => assert_eq!(d.id, id),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn auto_shrink_spares_small_populations() {
        let (t, a, _, c) = line();
        let mut sim = NetSim::new(t, 17);
        // A burst below the arming threshold must never compact: small
        // simulations keep their warm buffers.
        for _ in 0..64 {
            sim.start_flow(FlowSpec::new(a, c, 50_000));
        }
        while sim.next_event().is_some() {}
        assert_eq!(sim.stats().auto_shrinks, 0);
        // And disarming the trigger suppresses it outright.
        sim.set_auto_shrink(false);
        for _ in 0..256 {
            sim.start_flow(FlowSpec::new(a, c, 50_000));
        }
        while sim.next_event().is_some() {}
        assert_eq!(sim.stats().auto_shrinks, 0);
    }

    #[test]
    fn verify_allocation_accepts_settled_states_and_rejects_perturbations() {
        let (t, a, b, c) = line();
        let mut sim = NetSim::new(t, 23);
        let idle = sim.verify_allocation().expect("empty grid certifies");
        assert_eq!(idle.flows, 0);
        let f1 = sim.start_flow(FlowSpec::new(a, c, 50_000_000));
        let f2 = sim.start_flow(FlowSpec::new(a, b, 50_000_000));
        let cert = sim.verify_allocation().expect("settled state certifies");
        assert_eq!(cert.flows, 2);
        assert!(cert.saturated_links >= 1, "shared uplink must saturate");
        assert!(cert.max_utilization > 0.99 && cert.max_utilization <= 1.0 + 1e-6);
        assert_eq!(cert.capped_flows + cert.bottlenecked_flows, 2);
        // Nudging one rate either way falsifies the certificate: up breaks
        // conservation, down breaks max-minness.
        let rate = sim.flow_rate(f1).expect("f1 live").as_bps();
        assert!(sim.perturb_rate_for_validation(f1, rate * 1e-3));
        assert!(matches!(
            sim.verify_allocation(),
            Err(Violation::LinkOversubscribed { .. }) | Err(Violation::CapExceeded { .. })
        ));
        assert!(sim.perturb_rate_for_validation(f1, -2.0 * rate * 1e-3));
        assert!(matches!(
            sim.verify_allocation(),
            Err(Violation::NotBottlenecked { .. })
        ));
        // Restore and the proof holds again.
        assert!(sim.perturb_rate_for_validation(f1, rate * 1e-3));
        sim.verify_allocation().expect("restored state certifies");
        let _ = f2;
    }
}

#[cfg(test)]
mod mode_tests {
    use super::*;
    use crate::topology::LinkSpec;

    fn mbps(m: f64) -> Bandwidth {
        Bandwidth::from_mbps(m)
    }

    fn ms(m: u64) -> SimDuration {
        SimDuration::from_millis(m)
    }

    /// Two disconnected pairs: a--b and c--d.
    fn disjoint_pairs() -> (Topology, [NodeId; 4]) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        let d = t.add_node("d");
        t.add_duplex_link(a, b, LinkSpec::new(mbps(100.0), ms(1)));
        t.add_duplex_link(c, d, LinkSpec::new(mbps(100.0), ms(1)));
        (t, [a, b, c, d])
    }

    #[test]
    fn incremental_solves_only_the_perturbed_component() {
        let (t, [a, b, c, d]) = disjoint_pairs();
        let mut sim = NetSim::new(t, 1);
        assert_eq!(sim.solver_mode(), SolverMode::Incremental);
        sim.start_flow(FlowSpec::new(a, b, 12_500_000));
        sim.start_flow(FlowSpec::new(c, d, 12_500_000));
        let s = sim.stats();
        assert_eq!(s.incremental_solves, 2);
        assert_eq!(s.full_solves, 0);
        // Each arrival solved a single-flow component: starting c->d did
        // not re-solve the a->b side.
        assert_eq!(s.solver_flows_touched, 2);
        let mut completed = 0;
        while let Some(ev) = sim.next_event() {
            if matches!(ev.kind, EventKind::FlowCompleted(_)) {
                completed += 1;
            }
        }
        assert_eq!(completed, 2);
        // Per-link index drained back to empty: utilisation reads zero.
        for l in 0..sim.topology().link_count() {
            assert_eq!(sim.link_utilization(LinkId::from_index(l)), 0.0);
        }
    }

    #[test]
    fn full_mode_counts_full_solves() {
        let (t, [a, b, _, _]) = disjoint_pairs();
        let mut sim = NetSim::new(t, 1);
        sim.set_solver_mode(SolverMode::Full);
        assert_eq!(sim.solver_mode(), SolverMode::Full);
        // The two identical flows complete at the same instant; disarm
        // cohort batching so the per-event solve counts stay exact.
        sim.set_event_batching(false);
        sim.start_flow(FlowSpec::new(a, b, 12_500_000));
        sim.start_flow(FlowSpec::new(a, b, 12_500_000));
        while sim.next_event().is_some() {}
        let s = sim.stats();
        assert_eq!(s.incremental_solves, 0);
        // Two starts + two completions, each a full solve.
        assert_eq!(s.full_solves, 4);
        // 1 at first start, 2 at second, 1 after the first completion, 0
        // after the last.
        assert_eq!(s.solver_flows_touched, 4);
    }

    #[test]
    fn full_and_incremental_agree_on_the_timeline() {
        // Shared-bottleneck churn with background traffic: both modes must
        // produce the same completions. On a single connected component the
        // incremental path solves the same system over the same links, so
        // the timelines agree to the nanosecond.
        let run = |mode: SolverMode| -> Vec<(u64, u64)> {
            let mut t = Topology::new();
            let a = t.add_node("a");
            let b = t.add_node("b");
            let c = t.add_node("c");
            t.add_duplex_link(a, b, LinkSpec::new(mbps(100.0), ms(1)));
            t.add_duplex_link(b, c, LinkSpec::new(mbps(100.0), ms(1)));
            let mut sim = NetSim::new(t, 11);
            sim.set_solver_mode(mode);
            sim.add_background(BackgroundProfile::new(b, c, 4.0, 1_500_000.0));
            let mut out = Vec::new();
            for i in 0..4u64 {
                let id = sim.start_flow(FlowSpec::new(a, c, 3_000_000 + i * 777_777));
                loop {
                    match sim.next_event() {
                        Some(SimEvent {
                            time,
                            kind: EventKind::FlowCompleted(d),
                        }) if d.id == id => {
                            out.push((time.as_nanos(), d.bytes));
                            break;
                        }
                        Some(_) => {}
                        None => panic!("flow never completed"),
                    }
                }
            }
            out
        };
        assert_eq!(run(SolverMode::Incremental), run(SolverMode::Full));
    }

    #[test]
    fn probe_scratch_reuse_matches_first_call() {
        let (t, [a, b, c, d]) = disjoint_pairs();
        let mut sim = NetSim::new(t, 1);
        sim.start_flow(FlowSpec::new(a, b, 1_000_000_000));
        let first = sim.available_bandwidth(a, b, None);
        // Interleave probes of both components; reused buffers must not
        // leak state between calls.
        let other = sim.available_bandwidth(c, d, None);
        let again = sim.available_bandwidth(a, b, None);
        assert_eq!(first, again);
        assert!((other.as_mbps() - 100.0).abs() < 1e-9);
        assert!((first.as_mbps() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn slot_reuse_keeps_ids_and_completions_straight() {
        // Drive many short flows through a single slot; ids must never
        // collide and every flow must complete exactly once.
        let (t, [a, b, _, _]) = disjoint_pairs();
        let mut sim = NetSim::new(t, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            let id = sim.start_flow(FlowSpec::new(a, b, 500_000));
            let ev = sim.next_event().expect("completes");
            let EventKind::FlowCompleted(d) = ev.kind else {
                panic!("unexpected event");
            };
            assert_eq!(d.id, id);
            assert!(seen.insert(d.id), "flow id reused");
        }
        assert_eq!(sim.stats().flows_completed, 50);
        assert_eq!(sim.active_flow_count(), 0);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan};
    use crate::topology::LinkSpec;

    fn mbps(m: f64) -> Bandwidth {
        Bandwidth::from_mbps(m)
    }

    /// a --100Mbps-- b --100Mbps-- c
    fn line() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        t.add_duplex_link(
            a,
            b,
            LinkSpec::new(mbps(100.0), SimDuration::from_millis(1)),
        );
        t.add_duplex_link(
            b,
            c,
            LinkSpec::new(mbps(100.0), SimDuration::from_millis(1)),
        );
        (t, a, b, c)
    }

    fn drain(sim: &mut NetSim) -> Vec<SimEvent> {
        let mut out = Vec::new();
        while let Some(ev) = sim.next_event() {
            out.push(ev);
        }
        out
    }

    #[test]
    fn link_down_stalls_then_flow_recovers() {
        let (t, a, _, c) = line();
        let mut sim = NetSim::new(t, 1);
        let path = sim.routing().path(a, c).unwrap().clone();
        let first = path.links()[0];
        // Alone the 12.5 MB flow takes 1 s; a 2 s outage starting at 0.5 s
        // (half the bytes already delivered) pushes completion to 3.0 s.
        sim.install_fault_plan(FaultPlan::new().link_down(
            SimTime::from_secs_f64(0.5),
            SimDuration::from_secs(2),
            first,
        ));
        sim.start_flow(FlowSpec::new(a, c, 12_500_000));
        let events = drain(&mut sim);
        let fault_changes: Vec<&SimEvent> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::FaultChanged(_)))
            .collect();
        assert_eq!(fault_changes.len(), 2, "start + clear");
        let EventKind::FaultChanged(start) = &fault_changes[0].kind else {
            unreachable!()
        };
        assert!(start.active);
        assert_eq!(start.kind, FaultKind::LinkDown { link: first });
        let done = events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::FlowCompleted(d) => Some(d.clone()),
                _ => None,
            })
            .expect("flow completes after fault clears");
        assert!(
            (done.finished.as_secs_f64() - 3.0).abs() < 1e-6,
            "finished at {}",
            done.finished
        );
        assert_eq!(sim.stats().fault_transitions, 2);
        assert_eq!(sim.active_fault_count(), 0);
    }

    #[test]
    fn brownout_scales_capacity_and_restores() {
        let (t, a, _, c) = line();
        let mut sim = NetSim::new(t, 1);
        let path = sim.routing().path(a, c).unwrap().clone();
        let first = path.links()[0];
        let nominal = sim.link_capacity(first);
        // 50% brown-out over [0.5 s, 1.5 s]: 6.25 MB done by 0.5 s, then
        // 6.25 MB/s for 1 s (6.25 MB), done exactly at 1.5 s.
        sim.install_fault_plan(FaultPlan::new().link_brownout(
            SimTime::from_secs_f64(0.5),
            SimDuration::from_secs(1),
            first,
            0.5,
        ));
        sim.start_flow(FlowSpec::new(a, c, 12_500_000));
        let events = drain(&mut sim);
        let done = events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::FlowCompleted(d) => Some(d.clone()),
                _ => None,
            })
            .expect("completes");
        assert!(
            (done.finished.as_secs_f64() - 1.5).abs() < 1e-6,
            "finished at {}",
            done.finished
        );
        assert_eq!(sim.link_capacity(first), nominal, "capacity restored");
    }

    #[test]
    fn host_blackout_kills_all_incident_links() {
        let (t, a, b, c) = line();
        let mut sim = NetSim::new(t, 1);
        sim.install_fault_plan(FaultPlan::new().host_blackout(
            SimTime::ZERO,
            SimDuration::from_secs(5),
            b,
        ));
        sim.schedule_timer(SimTime::from_secs_f64(1.0), 1);
        let ev = sim.next_event().unwrap();
        assert!(matches!(ev.kind, EventKind::FaultChanged(n) if n.active));
        assert_eq!(sim.active_fault_count(), 1);
        // Every path crosses b, so no bandwidth is available anywhere.
        assert_eq!(sim.available_bandwidth(a, c, None), Bandwidth::ZERO);
        assert_eq!(sim.available_bandwidth(c, a, None), Bandwidth::ZERO);
    }

    #[test]
    fn connection_drop_resets_flows_without_completion() {
        let (t, a, _, c) = line();
        let mut sim = NetSim::new(t, 1);
        sim.install_fault_plan(FaultPlan::new().connection_drop(SimTime::from_secs_f64(0.5), c));
        let id = sim.start_flow(FlowSpec::new(a, c, 12_500_000));
        sim.schedule_timer(SimTime::from_secs_f64(2.0), 9);
        let events = drain(&mut sim);
        assert!(
            !events
                .iter()
                .any(|e| matches!(e.kind, EventKind::FlowCompleted(_))),
            "reset flow must not complete: {events:?}"
        );
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::FaultChanged(n) if n.active)));
        assert_eq!(sim.stats().flows_dropped, 1);
        assert_eq!(sim.flow_rate(id), None);
        assert_eq!(sim.active_fault_count(), 0, "connection drops are instant");
    }

    #[test]
    fn overlapping_faults_compose_and_unwind() {
        let (t, a, _, c) = line();
        let mut sim = NetSim::new(t, 1);
        let path = sim.routing().path(a, c).unwrap().clone();
        let first = path.links()[0];
        sim.install_fault_plan(
            FaultPlan::new()
                .link_brownout(
                    SimTime::from_secs_f64(1.0),
                    SimDuration::from_secs(4),
                    first,
                    0.5,
                )
                .link_brownout(
                    SimTime::from_secs_f64(2.0),
                    SimDuration::from_secs(1),
                    first,
                    0.5,
                ),
        );
        let at = |secs: f64, sim: &mut NetSim| {
            sim.schedule_timer(SimTime::from_secs_f64(secs), 0);
            while let Some(ev) = sim.next_event() {
                if matches!(ev.kind, EventKind::TimerFired(0)) {
                    break;
                }
            }
        };
        at(1.5, &mut sim);
        assert!((sim.link_capacity(first).as_mbps() - 50.0).abs() < 1e-9);
        at(2.5, &mut sim);
        assert!((sim.link_capacity(first).as_mbps() - 25.0).abs() < 1e-9);
        at(3.5, &mut sim);
        assert!((sim.link_capacity(first).as_mbps() - 50.0).abs() < 1e-9);
        at(5.5, &mut sim);
        assert!((sim.link_capacity(first).as_mbps() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "fault scheduled in the past")]
    fn past_fault_rejected() {
        let (t, _, b, _) = line();
        let mut sim = NetSim::new(t, 1);
        sim.schedule_timer(SimTime::from_secs_f64(1.0), 0);
        while sim.next_event().is_some() {}
        sim.install_fault_plan(FaultPlan::new().host_blackout(
            SimTime::ZERO,
            SimDuration::from_secs(1),
            b,
        ));
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use crate::topology::LinkSpec;

    fn mbps(m: f64) -> Bandwidth {
        Bandwidth::from_mbps(m)
    }

    fn ms(m: u64) -> SimDuration {
        SimDuration::from_millis(m)
    }

    /// a --100Mbps-- hub --100Mbps-- b, plus hub --100Mbps-- c.
    fn star() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let hub = t.add_node("hub");
        let b = t.add_node("b");
        let c = t.add_node("c");
        t.add_duplex_link(a, hub, LinkSpec::new(mbps(100.0), ms(1)));
        t.add_duplex_link(hub, b, LinkSpec::new(mbps(100.0), ms(1)));
        t.add_duplex_link(hub, c, LinkSpec::new(mbps(100.0), ms(1)));
        (t, a, hub, b, c)
    }

    /// Drains a sim to quiescence, returning the (time, id, bytes)
    /// timeline of completions.
    fn drain(sim: &mut NetSim) -> Vec<(u64, u64, u64)> {
        let mut out = Vec::new();
        while let Some(ev) = sim.next_event() {
            if let EventKind::FlowCompleted(d) = ev.kind {
                out.push((ev.time.as_nanos(), d.id.0, d.bytes));
            }
        }
        out
    }

    #[test]
    fn simultaneous_completions_batch_into_one_solve() {
        let run = |batching: bool| {
            let (t, a, _, b, _) = star();
            let mut sim = NetSim::new(t, 7);
            sim.set_event_batching(batching);
            // 8 identical flows share one bottleneck: equal rates, equal
            // bytes, one completion instant — an 8-event cohort.
            for _ in 0..8 {
                sim.start_flow(FlowSpec::new(a, b, 1_000_000));
            }
            let timeline = drain(&mut sim);
            (timeline, sim.stats())
        };
        let (batched_timeline, batched) = run(true);
        let (plain_timeline, plain) = run(false);
        assert_eq!(batched_timeline, plain_timeline);
        assert_eq!(batched_timeline.len(), 8);
        // Unbatched: 8 arrival solves + 7 completion solves (the last
        // removal leaves an empty component, which is not a solve).
        // Batched: the 8 same-instant completions collapse into one
        // cohort whose end-of-batch component is already empty.
        assert_eq!(plain.incremental_solves, 15);
        assert_eq!(batched.incremental_solves, 8);
        // Superseded completion generations share timestamps too, so more
        // than one cohort is entered; only one defers real work.
        assert!(batched.event_cohorts >= 1);
        assert_eq!(batched.batched_solves, 1);
        assert_eq!(batched.solves_avoided, 7);
        assert_eq!(plain.solves_avoided, 0);
        assert_eq!(plain.event_cohorts, 0);
        sim_stats_quiescent(&batched, &plain);
    }

    /// The non-solver counters must be identical either way: batching
    /// defers solves, never events or flow mutations.
    fn sim_stats_quiescent(batched: &EngineStats, plain: &EngineStats) {
        // `events_processed` may legitimately differ: deferred solves bump
        // fewer epochs, so fewer superseded completion entries get popped
        // and discarded.
        assert_eq!(batched.flows_started, plain.flows_started);
        assert_eq!(batched.flows_completed, plain.flows_completed);
        assert_eq!(batched.bytes_completed, plain.bytes_completed);
        assert_eq!(batched.fault_transitions, plain.fault_transitions);
        assert_eq!(batched.flows_dropped, plain.flows_dropped);
    }

    #[test]
    fn simultaneous_fault_edges_batch_into_one_solve() {
        let run = |batching: bool| {
            let (t, a, _, b, c) = star();
            let at = SimTime::from_secs_f64(0.02);
            let hold = SimDuration::from_secs(5);
            let mut sim = NetSim::new(t, 9);
            sim.set_event_batching(batching);
            let to_b = sim.routing().path(a, b).expect("routable").links()[1];
            let to_c = sim.routing().path(a, c).expect("routable").links()[1];
            // Two fault edges on the same instant, both touching live
            // components.
            sim.install_fault_plan(
                FaultPlan::new()
                    .link_brownout(at, hold, to_b, 0.5)
                    .link_brownout(at, hold, to_c, 0.25),
            );
            sim.start_flow(FlowSpec::new(a, b, 4_000_000));
            sim.start_flow(FlowSpec::new(a, c, 5_000_000));
            let timeline = drain(&mut sim);
            (timeline, sim.stats())
        };
        let (batched_timeline, batched) = run(true);
        let (plain_timeline, plain) = run(false);
        assert_eq!(batched_timeline, plain_timeline);
        assert_eq!(batched_timeline.len(), 2);
        assert!(batched.event_cohorts >= 1);
        assert!(batched.solves_avoided >= 1);
        assert!(batched.incremental_solves < plain.incremental_solves);
        sim_stats_quiescent(&batched, &plain);
    }

    #[test]
    fn full_mode_cohorts_batch_into_one_full_solve() {
        let run = |batching: bool| {
            let (t, a, _, b, _) = star();
            let mut sim = NetSim::new(t, 7);
            sim.set_solver_mode(SolverMode::Full);
            sim.set_event_batching(batching);
            for _ in 0..6 {
                sim.start_flow(FlowSpec::new(a, b, 2_000_000));
            }
            let timeline = drain(&mut sim);
            (timeline, sim.stats())
        };
        let (batched_timeline, batched) = run(true);
        let (plain_timeline, plain) = run(false);
        assert_eq!(batched_timeline, plain_timeline);
        // 6 arrival solves + 1 batched completion solve vs 6 + 6.
        assert_eq!(plain.full_solves, 12);
        assert_eq!(batched.full_solves, 7);
        assert_eq!(batched.solves_avoided, 5);
        sim_stats_quiescent(&batched, &plain);
    }

    #[test]
    fn background_churn_batches_and_timeline_is_unchanged() {
        // The grid_workload churn case: background arrivals keep the
        // bottleneck's component hot while bursts of identical user flows
        // arrive and depart together. Batching must cut the solve count
        // without moving a single completion.
        let run = |batching: bool| {
            let (t, a, hub, b, _) = star();
            let mut sim = NetSim::new(t, 23);
            sim.set_event_batching(batching);
            sim.add_background(BackgroundProfile::new(hub, b, 6.0, 800_000.0));
            let mut timeline = Vec::new();
            for burst in 0..4u64 {
                for _ in 0..16 {
                    sim.start_flow(FlowSpec::new(a, b, 500_000 + burst * 100_000));
                }
                let deadline = SimTime::from_secs_f64(10.0 * (burst + 1) as f64);
                for ev in sim.run_until(deadline) {
                    if let EventKind::FlowCompleted(d) = ev.kind {
                        timeline.push((ev.time.as_nanos(), d.id.0, d.bytes));
                    }
                }
            }
            (timeline, sim.stats())
        };
        let (batched_timeline, batched) = run(true);
        let (plain_timeline, plain) = run(false);
        assert_eq!(batched_timeline, plain_timeline);
        assert_eq!(batched_timeline.len(), 64);
        assert!(
            batched.incremental_solves < plain.incremental_solves,
            "batched {} vs plain {}",
            batched.incremental_solves,
            plain.incremental_solves
        );
        assert!(batched.solves_avoided > 0);
        assert!(batched.event_cohorts > 0);
        sim_stats_quiescent(&batched, &plain);
    }

    #[test]
    fn verify_allocation_holds_after_batched_solves() {
        let (t, a, _, b, c) = star();
        let mut sim = NetSim::new(t, 31);
        sim.set_validation(true);
        for _ in 0..8 {
            sim.start_flow(FlowSpec::new(a, b, 1_000_000));
            sim.start_flow(FlowSpec::new(a, c, 1_000_000));
        }
        // Process the same-instant completion cohorts; every batched solve
        // self-certifies (set_validation) and the final state re-certifies
        // from scratch.
        while let Some(ev) = sim.next_event() {
            if matches!(ev.kind, EventKind::FlowCompleted(_)) {
                sim.verify_allocation().expect("certificate after cohort");
            }
        }
        sim.verify_allocation().expect("certificate at quiescence");
    }

    #[test]
    fn slot_reuse_within_a_cohort_resolves_the_new_occupant() {
        // A background arrival inside the same cohort as a completion can
        // reuse the freed slot; the deferred seed must still discover the
        // new occupant's (different) route. Engineer it directly: two
        // identical flows complete together while a background arrival is
        // forced onto the same instant via a zero-latency profile... the
        // simplest deterministic stand-in is a user flow started from a
        // timer-driven driver — timers never defer solves, so instead
        // exercise the path with the drop + restart shape below.
        let (t, a, _, b, c) = star();
        let at = SimTime::from_secs_f64(0.01);
        let mut sim = NetSim::new(t, 3);
        // Connection drop through c at the same instant as a brownout on
        // the a--hub side: one cohort with removals and cap changes.
        let shared = sim.routing().path(a, b).expect("routable").links()[0];
        sim.install_fault_plan(FaultPlan::new().connection_drop(at, c).link_brownout(
            at,
            SimDuration::from_secs(2),
            shared,
            0.5,
        ));
        sim.start_flow(FlowSpec::new(a, b, 3_000_000));
        sim.start_flow(FlowSpec::new(a, c, 3_000_000));
        let timeline = drain(&mut sim);
        // The a->c flow dies silently with the drop; a->b finishes.
        assert_eq!(timeline.len(), 1);
        assert_eq!(timeline[0].2, 3_000_000);
        sim.verify_allocation()
            .expect("certificate after drop cohort");
    }
}
