//! Allocation certificates: independent verification of the max-min solver.
//!
//! Every number the reproduction publishes flows through the incremental
//! settle path ([`crate::engine::SolverMode::Incremental`]) — a fast path
//! that re-solves only the perturbed connected component of the flow/link
//! graph. This module certifies, from first principles and without trusting
//! any solver internals, that the engine's current rate assignment really is
//! the max-min fair allocation the fluid model promises:
//!
//! 1. **Conservation / non-negative residuals** — on every link the summed
//!    allocated rate does not exceed the (fault-adjusted) capacity, and no
//!    flow carries a negative or unsolved (`NaN`) rate or an impossible
//!    byte counter.
//! 2. **Per-flow cap** — no flow exceeds its own rate ceiling.
//! 3. **Bottleneck certificate** — every flow not running at its cap
//!    crosses at least one *saturated* link on which its share is maximal
//!    among all flows crossing that link. This is the classic
//!    bottleneck/KKT characterisation of max-min fairness (Bertsekas &
//!    Gallager): an allocation satisfies it **iff** it is the (unique)
//!    max-min fair allocation, so the check is a complete certificate, not
//!    a heuristic.
//!
//! [`NetSim::verify_allocation`](crate::engine::NetSim::verify_allocation)
//! checks the whole grid on demand; the engine additionally re-certifies
//! every solved component right after each settle when validation is on
//! (always in debug builds and under the `validate` cargo feature, or at
//! runtime via
//! [`NetSim::set_validation`](crate::engine::NetSim::set_validation) — the
//! bench bins' `--verify` flag).
//!
//! # Transition certificates
//!
//! Settled-state checks prove each *state* is max-min fair but say nothing
//! about the *delta* an incremental solve applied to reach it: a buggy
//! component walk could clobber a flow two hops away and the per-component
//! certificate above would never look at it. When validation is on the
//! engine therefore also audits every transition against a pre-solve bit
//! snapshot:
//!
//! 1. **Component confinement** — a flow outside the solved connected
//!    component keeps a bit-identical rate, byte counter and settle clock
//!    ([`Violation::OutOfComponentRateChange`] /
//!    [`Violation::OutOfComponentSettle`] otherwise).
//! 2. **Exact byte re-integration** — a flow the solve settled carries
//!    exactly `max(remaining − rate·dt/8, 0)` for its *pre-transition*
//!    rate, bit for bit ([`Violation::TransitionByteMismatch`] otherwise);
//!    bytes can only decrease across a transition, so conservation is
//!    implied.
//!
//! A passing transition yields a [`TransitionCertificate`] and bumps
//! `EngineStats::transitions_certified`.

use std::fmt;

use crate::engine::FlowId;
use crate::topology::LinkId;

/// Relative tolerance for capacity, cap and saturation comparisons.
///
/// Progressive filling does exact-arithmetic bookkeeping only up to f64
/// rounding; the solver's own invariant tests use the same bound.
pub const REL_TOL: f64 = 1e-6;

/// Absolute slack in bits/second, covering `-0.0` residues and subtraction
/// noise on otherwise idle links.
pub const ABS_TOL_BPS: f64 = 1e-6;

/// Proof summary returned by a successful verification: what was checked
/// and the witness counts behind the max-min certificate.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Certificate {
    /// Flows whose allocation was certified (all traffic classes).
    pub flows: usize,
    /// Links crossed by at least one certified flow.
    pub links_in_use: usize,
    /// Links allocated to (relative) capacity — the bottlenecks.
    pub saturated_links: usize,
    /// Flows frozen at their own rate ceiling.
    pub capped_flows: usize,
    /// Flows certified by a saturated link on which their share is maximal.
    pub bottlenecked_flows: usize,
    /// Highest link utilisation observed (1.0 = exactly saturated).
    pub max_utilization: f64,
    /// Total bytes still outstanding across certified flows.
    pub bytes_outstanding: f64,
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "certificate: {} flows ({} capped, {} bottlenecked) over {} links \
             ({} saturated, peak util {:.6})",
            self.flows,
            self.capped_flows,
            self.bottlenecked_flows,
            self.links_in_use,
            self.saturated_links,
            self.max_utilization
        )
    }
}

/// Proof summary for one certified solver transition: what the delta audit
/// compared against the pre-solve bit snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransitionCertificate {
    /// Flows inside the solved connected component.
    pub component_flows: usize,
    /// Live flows outside the component, proven bit-identical across the
    /// transition.
    pub frozen_flows: usize,
    /// Component flows whose rate was rewritten by the solve (their byte
    /// counters were re-integrated and checked exactly).
    pub resolved_flows: usize,
    /// Payload bytes settled (drained) across the transition.
    pub bytes_settled: f64,
}

impl fmt::Display for TransitionCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transition certificate: {} component flows ({} re-rated), \
             {} frozen outside, {:.0} bytes settled",
            self.component_flows, self.resolved_flows, self.frozen_flows, self.bytes_settled
        )
    }
}

/// A falsified certificate: the first check the current allocation failed.
///
/// Any variant means the settled state is **not** the max-min fair
/// allocation of the current topology/caps — either the solver or the
/// incremental component tracking is wrong, and every published number
/// downstream of this state is suspect.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A live flow still carries the `NaN` never-solved sentinel.
    UnsolvedRate {
        /// The unsolved flow.
        flow: FlowId,
    },
    /// A flow was assigned a negative rate.
    NegativeRate {
        /// The offending flow.
        flow: FlowId,
        /// Its (negative) allocated rate.
        rate_bps: f64,
    },
    /// A flow exceeds its own rate ceiling.
    CapExceeded {
        /// The offending flow.
        flow: FlowId,
        /// Its allocated rate.
        rate_bps: f64,
        /// The ceiling it was meant to respect.
        cap_bps: f64,
    },
    /// A link's summed allocation exceeds its effective capacity — the
    /// allocation is infeasible (conservation broken).
    LinkOversubscribed {
        /// The oversubscribed link.
        link: LinkId,
        /// Total rate allocated across it.
        allocated_bps: f64,
        /// Its current (fault-adjusted) capacity.
        capacity_bps: f64,
    },
    /// A flow below its cap crosses no saturated link on which its share
    /// is maximal: the allocation is not max-min fair (the flow's rate
    /// could be raised without lowering a smaller-or-equal share).
    NotBottlenecked {
        /// The flow without a bottleneck witness.
        flow: FlowId,
        /// Its allocated rate.
        rate_bps: f64,
    },
    /// A flow's lazily settled byte counter left `[0, total]`.
    ByteAccounting {
        /// The offending flow.
        flow: FlowId,
        /// Bytes outstanding according to the engine.
        remaining: f64,
        /// The flow's payload size.
        total_bytes: u64,
    },
    /// An incremental solve changed the rate of a flow *outside* the
    /// perturbed connected component — the component walk is unsound and
    /// the "incremental == full" equivalence no longer holds.
    OutOfComponentRateChange {
        /// The flow outside the solved component.
        flow: FlowId,
        /// Its rate before the solve.
        before_bps: f64,
        /// Its rate after the solve.
        after_bps: f64,
    },
    /// An incremental solve touched the byte counter or settle clock of a
    /// flow *outside* the perturbed connected component.
    OutOfComponentSettle {
        /// The flow outside the solved component.
        flow: FlowId,
        /// Bytes outstanding before the solve.
        before_remaining: f64,
        /// Bytes outstanding after the solve.
        after_remaining: f64,
    },
    /// A settled flow's byte counter does not equal the exact
    /// re-integration of its pre-transition rate over the elapsed sim
    /// time — bytes were created, destroyed, or mis-billed across the
    /// transition.
    TransitionByteMismatch {
        /// The mis-billed flow.
        flow: FlowId,
        /// The rate it carried before the solve.
        rate_bps: f64,
        /// Bytes outstanding the re-integration expects.
        expected_remaining: f64,
        /// Bytes outstanding the engine actually holds.
        actual_remaining: f64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UnsolvedRate { flow } => {
                write!(f, "flow {flow} is live but was never solved (NaN rate)")
            }
            Violation::NegativeRate { flow, rate_bps } => {
                write!(f, "flow {flow} has negative rate {rate_bps} bps")
            }
            Violation::CapExceeded {
                flow,
                rate_bps,
                cap_bps,
            } => write!(
                f,
                "flow {flow} runs at {rate_bps} bps above its cap {cap_bps} bps"
            ),
            Violation::LinkOversubscribed {
                link,
                allocated_bps,
                capacity_bps,
            } => write!(
                f,
                "link {link} carries {allocated_bps} bps over its capacity {capacity_bps} bps"
            ),
            Violation::NotBottlenecked { flow, rate_bps } => write!(
                f,
                "flow {flow} at {rate_bps} bps is below its cap yet crosses no saturated \
                 link on which its share is maximal (not max-min fair)"
            ),
            Violation::ByteAccounting {
                flow,
                remaining,
                total_bytes,
            } => write!(
                f,
                "flow {flow} has {remaining} bytes outstanding of a {total_bytes}-byte payload"
            ),
            Violation::OutOfComponentRateChange {
                flow,
                before_bps,
                after_bps,
            } => write!(
                f,
                "flow {flow} is outside the solved component yet its rate moved \
                 {before_bps} -> {after_bps} bps across the transition"
            ),
            Violation::OutOfComponentSettle {
                flow,
                before_remaining,
                after_remaining,
            } => write!(
                f,
                "flow {flow} is outside the solved component yet its byte counter moved \
                 {before_remaining} -> {after_remaining} across the transition"
            ),
            Violation::TransitionByteMismatch {
                flow,
                rate_bps,
                expected_remaining,
                actual_remaining,
            } => write!(
                f,
                "flow {flow} settled to {actual_remaining} bytes outstanding but exact \
                 re-integration of its pre-transition rate {rate_bps} bps expects \
                 {expected_remaining}"
            ),
        }
    }
}

impl std::error::Error for Violation {}
