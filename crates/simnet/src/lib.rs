//! # datagrid-simnet
//!
//! A deterministic, discrete-event, fluid-flow network simulator.
//!
//! This crate is the bottom layer of the PaCT 2005 Data Grid replica
//! selection reproduction. The original paper measured file transfers on a
//! physical three-cluster testbed connected by Taiwanese academic WAN links;
//! this crate replaces that hardware with a simulation that preserves the
//! mechanisms the paper exercises:
//!
//! * links with finite capacity and propagation latency ([`topology`]),
//! * TCP streams whose throughput is limited by the receive window and by
//!   loss (the Mathis bound) as well as by fair sharing ([`tcp`]),
//! * **max-min fair** bandwidth allocation among concurrent flows
//!   ([`flow`]),
//! * dynamic background traffic that makes available bandwidth fluctuate
//!   ([`background`]),
//! * an event-driven engine with timers and flow-completion notifications
//!   ([`engine`]).
//!
//! Everything is deterministic: all randomness flows from [`rng::SimRng`]
//! seeds, and simulated time ([`time::SimTime`]) is integer nanoseconds.
//!
//! ## Example
//!
//! ```
//! use datagrid_simnet::prelude::*;
//!
//! let mut topo = Topology::new();
//! let a = topo.add_node("a");
//! let b = topo.add_node("b");
//! topo.add_duplex_link(a, b, LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_millis(5)));
//!
//! let mut sim = NetSim::new(topo, 42);
//! let flow = sim.start_flow(FlowSpec::new(a, b, 1_000_000));
//! let event = sim.next_event().expect("one flow is active");
//! match event.kind {
//!     EventKind::FlowCompleted(done) => assert_eq!(done.id, flow),
//!     other => panic!("unexpected event {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod background;
pub mod engine;
pub mod event;
pub mod fault;
pub mod flow;
pub mod rng;
pub mod stats;
pub mod tcp;
pub mod time;
pub mod topology;
pub mod trace;
pub mod verify;

pub use engine::{
    EventKind, FaultNotice, FlowCompletion, FlowId, FlowSpec, FlowTag, NetSim, SimEvent, SolverMode,
};
pub use fault::{FaultKind, FaultPlan, ScheduledFault};
pub use time::{SimDuration, SimTime};
pub use topology::{Bandwidth, LinkId, LinkSpec, NodeId, Topology};
pub use verify::{Certificate, TransitionCertificate, Violation};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::background::{BackgroundProfile, BackgroundTraffic};
    pub use crate::engine::{
        EngineStats, EventKind, FaultNotice, FlowCompletion, FlowId, FlowSpec, FlowTag, NetSim,
        SimEvent, SolverMode,
    };
    pub use crate::fault::{FaultKind, FaultPlan, ScheduledFault};
    pub use crate::rng::SimRng;
    pub use crate::stats::{OnlineStats, TimeWeightedMean};
    pub use crate::tcp::TcpParams;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{Bandwidth, LinkId, LinkSpec, NodeId, Topology};
    pub use crate::trace::{LinkTrace, NetworkTrace};
    pub use crate::verify::{Certificate, TransitionCertificate, Violation};
}
