//! Background traffic generation.
//!
//! The paper's testbed sat on live university WAN links, so the bandwidth
//! available to any transfer fluctuated with other people's traffic — which
//! is precisely why replica selection needs monitoring and forecasting. We
//! reproduce that environment with per-path Poisson flow arrivals whose
//! sizes are heavy-tailed (lognormal): each arrival becomes a real flow in
//! the max-min solver, so foreground transfers genuinely compete for
//! capacity.

use crate::topology::{Bandwidth, NodeId};

/// A stationary background traffic source between two nodes.
///
/// Arrivals form a Poisson process with rate [`arrival_rate_hz`]; each flow
/// carries a lognormal number of bytes with the given mean and shape, capped
/// per-flow at `flow_cap` (a background flow is itself one TCP stream).
///
/// ```
/// use datagrid_simnet::background::BackgroundProfile;
/// use datagrid_simnet::topology::{Bandwidth, NodeId, Topology};
///
/// let mut topo = Topology::new();
/// let a = topo.add_node("wan-a");
/// let b = topo.add_node("wan-b");
/// let profile = BackgroundProfile::new(a, b, 0.5, 4e6)
///     .with_flow_cap(Bandwidth::from_mbps(20.0));
/// assert_eq!(profile.src, a);
/// ```
///
/// [`arrival_rate_hz`]: BackgroundProfile::arrival_rate_hz
#[derive(Debug, Clone, PartialEq)]
pub struct BackgroundProfile {
    /// Source node of the background flows.
    pub src: NodeId,
    /// Destination node of the background flows.
    pub dst: NodeId,
    /// Mean flow arrivals per simulated second.
    pub arrival_rate_hz: f64,
    /// Mean flow size in bytes.
    pub mean_size_bytes: f64,
    /// Lognormal shape parameter of the size distribution (sigma of the
    /// underlying normal); 0 gives constant sizes.
    pub size_sigma: f64,
    /// Per-flow rate ceiling (one TCP stream's worth); `None` = uncapped.
    pub flow_cap: Option<Bandwidth>,
}

impl BackgroundProfile {
    /// Creates a profile with the default heavy-tail shape (sigma = 1).
    ///
    /// # Panics
    ///
    /// Panics if the arrival rate or mean size is not strictly positive.
    pub fn new(src: NodeId, dst: NodeId, arrival_rate_hz: f64, mean_size_bytes: f64) -> Self {
        assert!(
            arrival_rate_hz > 0.0 && arrival_rate_hz.is_finite(),
            "arrival rate must be positive, got {arrival_rate_hz}"
        );
        assert!(
            mean_size_bytes > 0.0 && mean_size_bytes.is_finite(),
            "mean size must be positive, got {mean_size_bytes}"
        );
        BackgroundProfile {
            src,
            dst,
            arrival_rate_hz,
            mean_size_bytes,
            size_sigma: 1.0,
            flow_cap: None,
        }
    }

    /// Sets the lognormal shape parameter.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    pub fn with_size_sigma(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "bad sigma {sigma}");
        self.size_sigma = sigma;
        self
    }

    /// Sets a per-flow rate ceiling.
    pub fn with_flow_cap(mut self, cap: Bandwidth) -> Self {
        self.flow_cap = Some(cap);
        self
    }

    /// Mean offered load in bits per second (`rate × mean size × 8`).
    pub fn offered_load(&self) -> Bandwidth {
        Bandwidth::from_bps(self.arrival_rate_hz * self.mean_size_bytes * 8.0)
    }

    /// Builds a profile that offers `utilization` (0–1) of `capacity` using
    /// flows of `mean_size_bytes`, deriving the arrival rate.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is not in `(0, 1]` or `mean_size_bytes` is
    /// not positive.
    pub fn for_utilization(
        src: NodeId,
        dst: NodeId,
        capacity: Bandwidth,
        utilization: f64,
        mean_size_bytes: f64,
    ) -> Self {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0, 1], got {utilization}"
        );
        let target_bps = capacity.as_bps() * utilization;
        let rate = target_bps / (mean_size_bytes * 8.0);
        BackgroundProfile::new(src, dst, rate, mean_size_bytes)
    }
}

/// A set of background profiles, convenient for building symmetric WAN
/// cross-traffic before installing it into a
/// [`NetSim`](crate::engine::NetSim).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BackgroundTraffic {
    profiles: Vec<BackgroundProfile>,
}

impl BackgroundTraffic {
    /// Creates an empty set.
    pub fn new() -> Self {
        BackgroundTraffic::default()
    }

    /// Adds one profile.
    pub fn push(&mut self, profile: BackgroundProfile) -> &mut Self {
        self.profiles.push(profile);
        self
    }

    /// Adds a symmetric pair of profiles (one per direction).
    pub fn push_symmetric(&mut self, profile: BackgroundProfile) -> &mut Self {
        let mut reverse = profile.clone();
        std::mem::swap(&mut reverse.src, &mut reverse.dst);
        self.profiles.push(profile);
        self.profiles.push(reverse);
        self
    }

    /// The profiles collected so far.
    pub fn profiles(&self) -> &[BackgroundProfile] {
        &self.profiles
    }

    /// Consumes the set, returning the profiles.
    pub fn into_profiles(self) -> Vec<BackgroundProfile> {
        self.profiles
    }
}

impl Extend<BackgroundProfile> for BackgroundTraffic {
    fn extend<T: IntoIterator<Item = BackgroundProfile>>(&mut self, iter: T) {
        self.profiles.extend(iter);
    }
}

impl FromIterator<BackgroundProfile> for BackgroundTraffic {
    fn from_iter<T: IntoIterator<Item = BackgroundProfile>>(iter: T) -> Self {
        BackgroundTraffic {
            profiles: Vec::from_iter(iter),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn two_nodes() -> (NodeId, NodeId) {
        let mut t = Topology::new();
        (t.add_node("a"), t.add_node("b"))
    }

    #[test]
    fn offered_load_matches_parameters() {
        let (a, b) = two_nodes();
        let p = BackgroundProfile::new(a, b, 2.0, 1_000_000.0);
        assert_eq!(p.offered_load().as_mbps(), 16.0);
    }

    #[test]
    fn for_utilization_derives_rate() {
        let (a, b) = two_nodes();
        let p = BackgroundProfile::for_utilization(a, b, Bandwidth::from_mbps(30.0), 0.4, 3e6);
        assert!((p.offered_load().as_mbps() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn symmetric_push_swaps_endpoints() {
        let (a, b) = two_nodes();
        let mut bg = BackgroundTraffic::new();
        bg.push_symmetric(BackgroundProfile::new(a, b, 1.0, 1e6));
        assert_eq!(bg.profiles().len(), 2);
        assert_eq!(bg.profiles()[0].src, a);
        assert_eq!(bg.profiles()[1].src, b);
        assert_eq!(bg.profiles()[1].dst, a);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn bad_utilization_rejected() {
        let (a, b) = two_nodes();
        let _ = BackgroundProfile::for_utilization(a, b, Bandwidth::from_mbps(30.0), 1.5, 1e6);
    }
}
