//! Deterministic fault injection: seeded schedules of link and host faults.
//!
//! A [`FaultPlan`] is a list of [`ScheduledFault`]s — link flaps, bandwidth
//! brown-outs, host degradation/blackouts and mid-transfer connection drops —
//! installed on a [`crate::engine::NetSim`] before (or during) a run. The
//! engine applies each fault at its start time, restores the network at its
//! end time, and announces both transitions to drivers as
//! [`crate::engine::EventKind::FaultChanged`] events.
//!
//! Everything is deterministic: plans are plain data, and the only random
//! generator ([`FaultPlan::random_link_flaps`]) draws from a caller-supplied
//! [`SimRng`], so the same seed always yields the same fault timeline.
//!
//! ```
//! use datagrid_simnet::prelude::*;
//!
//! let mut topo = Topology::new();
//! let a = topo.add_node("a");
//! let b = topo.add_node("b");
//! let (ab, _) = topo.add_duplex_link(
//!     a,
//!     b,
//!     LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_millis(1)),
//! );
//! let plan = FaultPlan::new()
//!     .link_down(SimTime::from_secs_f64(5.0), SimDuration::from_secs(10), ab)
//!     .host_degraded(SimTime::from_secs_f64(30.0), SimDuration::from_secs(5), b, 0.5);
//! assert_eq!(plan.len(), 2);
//! ```

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::topology::{LinkId, NodeId};

/// What a scheduled fault does to the network while it is active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// A directed link goes completely dark (capacity zero). Flows routed
    /// over it stall until the fault clears.
    LinkDown {
        /// The affected directed link.
        link: LinkId,
    },
    /// A directed link keeps only `factor` of its capacity (brown-out).
    LinkBrownout {
        /// The affected directed link.
        link: LinkId,
        /// Remaining capacity fraction in `(0, 1)`.
        factor: f64,
    },
    /// Every link touching `node` goes dark — the host drops off the grid.
    HostBlackout {
        /// The affected host.
        node: NodeId,
    },
    /// Every link touching `node` keeps only `factor` of its capacity
    /// (overloaded NIC, thrashing disk, sick switch port).
    HostDegraded {
        /// The affected host.
        node: NodeId,
        /// Remaining capacity fraction in `(0, 1)`.
        factor: f64,
    },
    /// Every established connection (active flow) through `node` is reset at
    /// the fault's start instant; capacity is unaffected. Models a daemon
    /// crash or TCP RST storm rather than a line cut.
    ConnectionDrop {
        /// The host whose connections are reset.
        node: NodeId,
    },
}

impl FaultKind {
    /// Short stable label for logs and observability exports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::LinkDown { .. } => "link_down",
            FaultKind::LinkBrownout { .. } => "link_brownout",
            FaultKind::HostBlackout { .. } => "host_blackout",
            FaultKind::HostDegraded { .. } => "host_degraded",
            FaultKind::ConnectionDrop { .. } => "connection_drop",
        }
    }

    /// `true` for faults applied at a single instant with no active window.
    pub fn is_instant(&self) -> bool {
        matches!(self, FaultKind::ConnectionDrop { .. })
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::LinkDown { link } => write!(f, "link_down({link})"),
            FaultKind::LinkBrownout { link, factor } => {
                write!(f, "link_brownout({link}, x{factor:.2})")
            }
            FaultKind::HostBlackout { node } => write!(f, "host_blackout({node})"),
            FaultKind::HostDegraded { node, factor } => {
                write!(f, "host_degraded({node}, x{factor:.2})")
            }
            FaultKind::ConnectionDrop { node } => write!(f, "connection_drop({node})"),
        }
    }
}

/// One fault with its activation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledFault {
    /// When the fault takes effect.
    pub at: SimTime,
    /// How long it lasts (ignored for instant faults such as
    /// [`FaultKind::ConnectionDrop`]).
    pub duration: SimDuration,
    /// What the fault does.
    pub kind: FaultKind,
}

impl ScheduledFault {
    /// When the network recovers from this fault.
    pub fn ends(&self) -> SimTime {
        self.at + self.duration
    }
}

/// A seeded, ordered schedule of faults to inject into a simulation.
///
/// Build one with the fluent helpers ([`FaultPlan::link_down`],
/// [`FaultPlan::host_blackout`], ...) or generate random link flaps with
/// [`FaultPlan::random_link_flaps`], then hand it to
/// `NetSim::install_fault_plan` (or `DataGrid::install_fault_plan`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds an arbitrary scheduled fault.
    ///
    /// # Panics
    ///
    /// Panics if a brown-out/degradation factor is outside `[0, 1)`.
    pub fn push(&mut self, fault: ScheduledFault) {
        if let FaultKind::LinkBrownout { factor, .. } | FaultKind::HostDegraded { factor, .. } =
            fault.kind
        {
            assert!(
                (0.0..1.0).contains(&factor),
                "fault factor must be in [0, 1), got {factor}"
            );
        }
        self.faults.push(fault);
        self.faults.sort_by_key(|f| f.at);
    }

    /// Schedules a full outage of one directed link.
    pub fn link_down(mut self, at: SimTime, duration: SimDuration, link: LinkId) -> Self {
        self.push(ScheduledFault {
            at,
            duration,
            kind: FaultKind::LinkDown { link },
        });
        self
    }

    /// Schedules a capacity brown-out of one directed link.
    pub fn link_brownout(
        mut self,
        at: SimTime,
        duration: SimDuration,
        link: LinkId,
        factor: f64,
    ) -> Self {
        self.push(ScheduledFault {
            at,
            duration,
            kind: FaultKind::LinkBrownout { link, factor },
        });
        self
    }

    /// Schedules a blackout of every link touching `node`.
    pub fn host_blackout(mut self, at: SimTime, duration: SimDuration, node: NodeId) -> Self {
        self.push(ScheduledFault {
            at,
            duration,
            kind: FaultKind::HostBlackout { node },
        });
        self
    }

    /// Schedules a capacity degradation of every link touching `node`.
    pub fn host_degraded(
        mut self,
        at: SimTime,
        duration: SimDuration,
        node: NodeId,
        factor: f64,
    ) -> Self {
        self.push(ScheduledFault {
            at,
            duration,
            kind: FaultKind::HostDegraded { node, factor },
        });
        self
    }

    /// Schedules an instant reset of all connections through `node`.
    pub fn connection_drop(mut self, at: SimTime, node: NodeId) -> Self {
        self.push(ScheduledFault {
            at,
            duration: SimDuration::ZERO,
            kind: FaultKind::ConnectionDrop { node },
        });
        self
    }

    /// Generates Poisson-arrival link flaps over `horizon` for each link in
    /// `links`: flaps arrive at `flap_rate_hz` per link and each outage lasts
    /// an exponential time with mean `mean_outage`. Deterministic for a given
    /// `rng` state.
    pub fn random_link_flaps(
        rng: &mut SimRng,
        links: &[LinkId],
        horizon: SimDuration,
        flap_rate_hz: f64,
        mean_outage: SimDuration,
    ) -> Self {
        let mut plan = FaultPlan::new();
        let outage_rate = 1.0 / mean_outage.as_secs_f64().max(1e-9);
        for &link in links {
            let mut t = SimTime::ZERO + SimDuration::from_secs_f64(rng.exponential(flap_rate_hz));
            while t < SimTime::ZERO + horizon {
                let outage = SimDuration::from_secs_f64(rng.exponential(outage_rate));
                plan.push(ScheduledFault {
                    at: t,
                    duration: outage,
                    kind: FaultKind::LinkDown { link },
                });
                t = t + outage + SimDuration::from_secs_f64(rng.exponential(flap_rate_hz));
            }
        }
        plan
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` if the plan has no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled faults in start-time order.
    pub fn iter(&self) -> impl Iterator<Item = &ScheduledFault> {
        self.faults.iter()
    }

    pub(crate) fn into_faults(self) -> Vec<ScheduledFault> {
        self.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_by_start_time() {
        let plan = FaultPlan::new()
            .host_blackout(
                SimTime::from_secs_f64(30.0),
                SimDuration::from_secs(1),
                NodeId(0),
            )
            .link_down(
                SimTime::from_secs_f64(5.0),
                SimDuration::from_secs(2),
                LinkId(1),
            );
        let starts: Vec<u64> = plan.iter().map(|f| f.at.as_secs_f64() as u64).collect();
        assert_eq!(starts, vec![5, 30]);
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    fn fault_labels_and_windows() {
        let f = ScheduledFault {
            at: SimTime::from_secs_f64(10.0),
            duration: SimDuration::from_secs(5),
            kind: FaultKind::LinkDown { link: LinkId(3) },
        };
        assert_eq!(f.ends(), SimTime::from_secs_f64(15.0));
        assert_eq!(f.kind.label(), "link_down");
        assert!(!f.kind.is_instant());
        assert!(FaultKind::ConnectionDrop { node: NodeId(1) }.is_instant());
        assert_eq!(format!("{}", f.kind), "link_down(l3)");
    }

    #[test]
    #[should_panic(expected = "fault factor")]
    fn out_of_range_factor_rejected() {
        let _ = FaultPlan::new().link_brownout(
            SimTime::ZERO,
            SimDuration::from_secs(1),
            LinkId(0),
            1.5,
        );
    }

    #[test]
    fn random_flaps_are_deterministic() {
        let gen = |seed: u64| {
            let mut rng = SimRng::seed_from_u64(seed);
            FaultPlan::random_link_flaps(
                &mut rng,
                &[LinkId(0), LinkId(1)],
                SimDuration::from_secs(600),
                1.0 / 60.0,
                SimDuration::from_secs(10),
            )
        };
        let a = gen(7);
        let b = gen(7);
        assert_eq!(a, b);
        assert_ne!(a, gen(8));
        assert!(!a.is_empty(), "600 s at ~1 flap/min should flap");
        for f in a.iter() {
            assert!(f.at < SimTime::ZERO + SimDuration::from_secs(600));
        }
    }
}
