//! Link utilisation tracing.
//!
//! Debugging a Data Grid experiment usually starts with "what was the
//! network doing?". A [`NetworkTrace`] records instantaneous utilisation
//! samples for selected links whenever its owner calls
//! [`NetworkTrace::sample`] (the Data Grid does so on monitoring ticks),
//! and answers windowed queries over the recorded history.

use std::collections::{BTreeMap, VecDeque};

use crate::engine::NetSim;
use crate::time::{SimDuration, SimTime};
use crate::topology::LinkId;

/// One recorded utilisation sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationSample {
    /// Sample time.
    pub time: SimTime,
    /// Utilisation in `[0, 1]`.
    pub utilization: f64,
}

/// Bounded utilisation history for one directed link.
///
/// Stored as a ring buffer: once the retention bound is reached, each new
/// sample evicts the oldest in O(1) (a `Vec` here would shift the whole
/// history on every push — O(n) per sample, quadratic over a long run).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkTrace {
    samples: VecDeque<UtilizationSample>,
    cap: usize,
}

impl LinkTrace {
    /// Default retention bound.
    pub const DEFAULT_CAPACITY: usize = 8192;

    fn new() -> Self {
        LinkTrace {
            samples: VecDeque::new(),
            cap: Self::DEFAULT_CAPACITY,
        }
    }

    fn push(&mut self, time: SimTime, utilization: f64) {
        if self.samples.len() == self.cap {
            self.samples.pop_front();
        }
        self.samples
            .push_back(UtilizationSample { time, utilization });
    }

    /// The recorded samples, oldest first.
    pub fn samples(&self) -> impl ExactSizeIterator<Item = &UtilizationSample> {
        self.samples.iter()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean utilisation over `[now - window, now]`, or `None` when no
    /// samples fall inside.
    pub fn mean_over(&self, now: SimTime, window: SimDuration) -> Option<f64> {
        let cutoff = if window.as_nanos() >= now.as_nanos() {
            SimTime::ZERO
        } else {
            now - window
        };
        let relevant: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.time >= cutoff && s.time <= now)
            .map(|s| s.utilization)
            .collect();
        if relevant.is_empty() {
            None
        } else {
            Some(relevant.iter().sum::<f64>() / relevant.len() as f64)
        }
    }

    /// The highest recorded utilisation, if any.
    pub fn peak(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|s| s.utilization)
            .max_by(|a, b| a.partial_cmp(b).expect("finite utilisation"))
    }
}

/// Utilisation traces for a set of links.
///
/// ```
/// use datagrid_simnet::prelude::*;
/// use datagrid_simnet::trace::NetworkTrace;
///
/// let mut topo = Topology::new();
/// let a = topo.add_node("a");
/// let b = topo.add_node("b");
/// let (fwd, _) = topo.add_duplex_link(
///     a, b, LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_millis(1)));
/// let mut sim = NetSim::new(topo, 1);
/// let mut trace = NetworkTrace::watching([fwd]);
///
/// sim.start_flow(FlowSpec::new(a, b, 10_000_000));
/// trace.sample(&sim);
/// assert!(trace.link(fwd).unwrap().peak().unwrap() > 0.9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetworkTrace {
    traces: BTreeMap<LinkId, LinkTrace>,
}

impl NetworkTrace {
    /// Creates a trace watching the given links.
    pub fn watching<I: IntoIterator<Item = LinkId>>(links: I) -> Self {
        NetworkTrace {
            traces: links.into_iter().map(|l| (l, LinkTrace::new())).collect(),
        }
    }

    /// Records one utilisation sample per watched link at the simulator's
    /// current time.
    pub fn sample(&mut self, sim: &NetSim) {
        let now = sim.now();
        for (link, trace) in &mut self.traces {
            trace.push(now, sim.link_utilization(*link));
        }
    }

    /// The trace of one link, if watched.
    pub fn link(&self, link: LinkId) -> Option<&LinkTrace> {
        self.traces.get(&link)
    }

    /// Iterates `(link, trace)` pairs in link order.
    pub fn iter(&self) -> impl Iterator<Item = (LinkId, &LinkTrace)> {
        self.traces.iter().map(|(l, t)| (*l, t))
    }

    /// Number of watched links.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// `true` when no links are watched.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EventKind, FlowSpec};
    use crate::topology::{Bandwidth, LinkSpec, Topology};

    fn setup() -> (
        NetSim,
        crate::topology::NodeId,
        crate::topology::NodeId,
        LinkId,
    ) {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let (fwd, _) = topo.add_duplex_link(
            a,
            b,
            LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_millis(1)),
        );
        (NetSim::new(topo, 1), a, b, fwd)
    }

    #[test]
    fn samples_track_flow_lifecycle() {
        let (mut sim, a, b, fwd) = setup();
        let mut trace = NetworkTrace::watching([fwd]);
        trace.sample(&sim);
        sim.start_flow(FlowSpec::new(a, b, 12_500_000).with_cap(Bandwidth::from_mbps(50.0)));
        trace.sample(&sim);
        // Drain the flow.
        while let Some(ev) = sim.next_event() {
            if matches!(ev.kind, EventKind::FlowCompleted(_)) {
                break;
            }
        }
        trace.sample(&sim);
        let t = trace.link(fwd).unwrap();
        let utils: Vec<f64> = t.samples().map(|s| s.utilization).collect();
        assert_eq!(utils.len(), 3);
        assert_eq!(utils[0], 0.0);
        assert!((utils[1] - 0.5).abs() < 1e-9);
        assert_eq!(utils[2], 0.0);
        assert!((t.peak().unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn windowed_mean_selects_recent_samples() {
        let (mut sim, a, b, fwd) = setup();
        let mut trace = NetworkTrace::watching([fwd]);
        // Idle sample at t=0.
        trace.sample(&sim);
        // Busy sample at t=1s.
        sim.schedule_timer(SimTime::from_secs_f64(1.0), 1);
        let _ = sim.next_event();
        sim.start_flow(FlowSpec::new(a, b, 1_000_000_000));
        trace.sample(&sim);
        let t = trace.link(fwd).unwrap();
        let now = SimTime::from_secs_f64(1.0);
        // Narrow window: only the busy sample.
        let recent = t.mean_over(now, SimDuration::from_millis(500)).unwrap();
        assert!((recent - 1.0).abs() < 1e-9);
        // Wide window: both samples.
        let wide = t.mean_over(now, SimDuration::from_secs(10)).unwrap();
        assert!((wide - 0.5).abs() < 1e-9);
        // Empty window in the past.
        assert_eq!(t.mean_over(SimTime::ZERO, SimDuration::ZERO), Some(0.0));
    }

    #[test]
    fn capacity_evicts_oldest_sample() {
        let mut t = LinkTrace::new();
        for i in 0..(LinkTrace::DEFAULT_CAPACITY + 10) {
            t.push(SimTime::from_nanos(i as u64), 0.25);
        }
        assert_eq!(t.len(), LinkTrace::DEFAULT_CAPACITY);
        let first = t.samples().next().expect("non-empty");
        assert_eq!(first.time, SimTime::from_nanos(10));
    }

    #[test]
    fn unwatched_links_are_absent() {
        let (_, _, _, fwd) = setup();
        let trace = NetworkTrace::watching([]);
        assert!(trace.is_empty());
        assert!(trace.link(fwd).is_none());
        let trace = NetworkTrace::watching([fwd]);
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.iter().count(), 1);
    }
}
