//! Max-min fair bandwidth allocation.
//!
//! The simulator uses a *fluid flow* model: at any instant every active flow
//! transfers at a constant rate, and the set of rates is the **max-min fair**
//! allocation subject to (a) every link's capacity and (b) each flow's own
//! rate cap (its TCP window/loss ceiling and endpoint disk/CPU limits).
//!
//! The allocation is computed by *progressive filling*: grow all flows'
//! rates together; whenever a flow hits its cap it freezes there; whenever a
//! link saturates, every unfrozen flow crossing it freezes at the current
//! fair share. This is the textbook definition of max-min fairness with
//! per-flow upper bounds and is how grid simulators (OptorSim, GridSim)
//! model TCP sharing.
//!
//! Two entry points:
//!
//! * [`max_min_allocation`] — the simple allocating API: one call, one
//!   fresh `Vec<f64>` of rates. Used by tests and one-shot callers.
//! * [`MaxMinSolver`] — the reusable solver the engine's hot path runs on.
//!   All working state (per-flow rate/frozen arrays, per-link
//!   remaining-capacity and user counts) lives in buffers owned by the
//!   solver and is recycled across calls, so a steady-state re-solve
//!   performs **no heap allocation**. The caller names the exact set of
//!   links in play, which lets the engine re-solve only the connected
//!   component of links/flows perturbed by an event instead of the whole
//!   grid.

use crate::topology::LinkId;

/// Input to the solver: one entry per active flow.
#[derive(Debug, Clone)]
pub struct FlowDemand<'a> {
    /// Directed links the flow traverses (empty for node-local flows).
    pub route: &'a [LinkId],
    /// The flow's own rate ceiling in bits per second
    /// (`f64::INFINITY` when uncapped).
    pub cap_bps: f64,
}

/// Converts a per-link user count to `f64` losslessly.
///
/// User counts are bounded by the number of concurrent flows; `f64`
/// represents every integer up to 2^53 exactly, so the conversion is exact
/// for any realistic simulation. The debug assert documents (and, in debug
/// builds, enforces) that bound instead of silently truncating through a
/// lossy `as` cast.
#[inline]
fn users_to_f64(users: usize) -> f64 {
    debug_assert!(
        (users as u64) < (1u64 << 53),
        "per-link user count {users} exceeds f64's exact integer range"
    );
    users as f64
}

/// A reusable progressive-filling solver.
///
/// The solver owns every buffer the algorithm needs; buffers grow to the
/// high-water mark of flows/links seen and are reused afterwards, so
/// repeated calls allocate nothing. Per-link state (`remaining`, `users`)
/// is indexed by **global** link id but only the entries named in the
/// `links` argument of [`MaxMinSolver::solve_with`] are initialised and
/// read — solving a 3-flow component of a 10 000-link grid touches 3 flows
/// and their links, nothing else.
///
/// ```
/// use datagrid_simnet::flow::MaxMinSolver;
/// use datagrid_simnet::topology::LinkId;
///
/// let routes: Vec<Vec<LinkId>> = vec![vec![LinkId::from_index(0)]; 2];
/// let mut solver = MaxMinSolver::new();
/// let rates = solver.solve_with(
///     2,
///     |i| routes[i].as_slice(),
///     |_| f64::INFINITY,
///     &[0],
///     &[100.0],
/// );
/// assert!((rates[0] - 50.0).abs() < 1e-9);
/// assert!((rates[1] - 50.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MaxMinSolver {
    rate: Vec<f64>,
    frozen: Vec<bool>,
    cap: Vec<f64>,
    /// Remaining capacity per global link id (valid only for links in play).
    remaining: Vec<f64>,
    /// Unfrozen flow count per global link id (valid only for links in play).
    users: Vec<usize>,
}

impl MaxMinSolver {
    /// Creates a solver with empty buffers.
    pub fn new() -> Self {
        MaxMinSolver::default()
    }

    /// Element capacity currently held by the reusable buffers.
    pub fn scratch_capacity(&self) -> usize {
        self.rate.capacity()
            + self.frozen.capacity()
            + self.cap.capacity()
            + self.remaining.capacity()
            + self.users.capacity()
    }

    /// Releases the reusable buffers (they regrow on the next solve).
    /// Buffers retain the high-water flow/link counts otherwise; the
    /// engine calls this from [`crate::engine::NetSim::shrink_scratch`].
    pub fn shrink(&mut self) {
        // Each allow covers its own line and the next:
        self.rate = Vec::new(); // lint: allow(alloc-in-hot-path) -- Vec::new is alloc-free; shrink releases capacity
        self.frozen = Vec::new();
        self.cap = Vec::new(); // lint: allow(alloc-in-hot-path) -- Vec::new is alloc-free; shrink releases capacity
        self.remaining = Vec::new();
        self.users = Vec::new(); // lint: allow(alloc-in-hot-path) -- Vec::new is alloc-free; shrink releases capacity
    }

    /// Computes the max-min fair allocation for `n` flows.
    ///
    /// * `route(i)` / `cap_bps(i)` describe flow `i` (routes may be asked
    ///   for repeatedly; both must be pure).
    /// * `links` lists the distinct global link indices in play: every link
    ///   appearing in any route must be present exactly once. Links outside
    ///   the list are never read or written.
    /// * `link_capacity_bps` is the global capacity array, indexed by link
    ///   id.
    ///
    /// Returns the rates for flows `0..n`, borrowed from the solver's
    /// internal buffer (valid until the next call).
    ///
    /// Guarantees (tested, including by property tests):
    /// * no link's total allocated rate exceeds its capacity (within 1e-6
    ///   relative tolerance),
    /// * no flow exceeds its cap,
    /// * every flow is *bottlenecked*: it either runs at its cap or crosses
    ///   at least one saturated link (Pareto efficiency),
    /// * flows with empty routes get exactly their cap.
    pub fn solve_with<'r>(
        &mut self,
        n: usize,
        route: impl Fn(usize) -> &'r [LinkId],
        cap_bps: impl Fn(usize) -> f64,
        links: &[u32],
        link_capacity_bps: &[f64],
    ) -> &[f64] {
        self.rate.clear();
        self.frozen.clear();
        self.cap.clear();
        self.rate.resize(n, 0.0);
        self.frozen.resize(n, false);
        self.cap.reserve(n);
        for i in 0..n {
            self.cap.push(cap_bps(i));
        }
        if self.remaining.len() < link_capacity_bps.len() {
            self.remaining.resize(link_capacity_bps.len(), 0.0);
            self.users.resize(link_capacity_bps.len(), 0);
        }
        for &l in links {
            let l = l as usize;
            self.remaining[l] = link_capacity_bps[l];
            self.users[l] = 0;
        }

        // Flows with empty routes consume no link capacity: give them their
        // cap. Everyone else registers as a user on each link it crosses.
        for i in 0..n {
            let r = route(i);
            if r.is_empty() {
                self.rate[i] = self.cap[i];
                self.frozen[i] = true;
            } else {
                for l in r {
                    debug_assert!(
                        l.index() < link_capacity_bps.len(),
                        "route references unknown link {l}"
                    );
                    self.users[l.index()] += 1;
                }
            }
        }

        // `level` is the common rate all unfrozen flows have reached so far.
        let mut level = 0.0_f64;
        loop {
            let active = self.frozen.iter().filter(|&&f| !f).count();
            if active == 0 {
                break;
            }

            // Next event: either some unfrozen flow reaches its cap, or some
            // link with users saturates at the shared fill level.
            let mut next_level = f64::INFINITY;
            for i in 0..n {
                if !self.frozen[i] {
                    next_level = next_level.min(self.cap[i]);
                }
            }
            for &l in links {
                let l = l as usize;
                let u = self.users[l];
                if u > 0 {
                    // All u unfrozen users rise together from `level`; the
                    // link saturates when (x - level) * u == remaining.
                    next_level = next_level.min(level + self.remaining[l] / users_to_f64(u));
                }
            }

            if !next_level.is_finite() {
                // Unfrozen flows with infinite caps and no constraining
                // links: cannot happen — any unfrozen flow has a nonempty
                // route and counts as a user on each of its links.
                // Defensive stop.
                for i in 0..n {
                    if !self.frozen[i] {
                        self.rate[i] = self.cap[i];
                        self.frozen[i] = true;
                    }
                }
                break;
            }

            let delta = (next_level - level).max(0.0);
            // Charge the growth to every link.
            if delta > 0.0 {
                for &l in links {
                    let l = l as usize;
                    if self.users[l] > 0 {
                        self.remaining[l] =
                            (self.remaining[l] - delta * users_to_f64(self.users[l])).max(0.0);
                    }
                }
            }
            level = next_level;

            // Freeze flows at their caps.
            let mut any_frozen = false;
            for i in 0..n {
                if !self.frozen[i] && self.cap[i] <= level + 1e-12 {
                    self.rate[i] = self.cap[i];
                    self.frozen[i] = true;
                    any_frozen = true;
                    for l in route(i) {
                        self.users[l.index()] -= 1;
                    }
                }
            }
            // Freeze flows crossing saturated links at the fill level.
            for i in 0..n {
                if self.frozen[i] {
                    continue;
                }
                let saturated = route(i).iter().any(|l| {
                    self.remaining[l.index()] <= 1e-9 * link_capacity_bps[l.index()].max(1.0)
                });
                if saturated {
                    self.rate[i] = level;
                    self.frozen[i] = true;
                    any_frozen = true;
                    for l in route(i) {
                        self.users[l.index()] -= 1;
                    }
                }
            }

            if !any_frozen {
                // Numerical safety: next_level should always freeze
                // something. If rounding prevented it, freeze the
                // minimum-cap flow.
                let mut best: Option<(usize, f64)> = None;
                for i in 0..n {
                    if !self.frozen[i] && best.is_none_or(|(_, c)| self.cap[i] < c) {
                        best = Some((i, self.cap[i]));
                    }
                }
                if let Some((i, cap)) = best {
                    self.rate[i] = cap.min(level);
                    self.frozen[i] = true;
                    for l in route(i) {
                        self.users[l.index()] -= 1;
                    }
                } else {
                    break;
                }
            }
        }

        &self.rate
    }

    /// The rate computed for flow `i` by the last [`MaxMinSolver::solve_with`]
    /// call.
    pub fn rate(&self, i: usize) -> f64 {
        self.rate[i]
    }
}

/// Computes the max-min fair allocation (allocating convenience wrapper
/// around [`MaxMinSolver`]).
///
/// `link_capacity_bps[l]` is the capacity of link `l` (indexable by every
/// link id appearing in a route). Returns one rate per flow, in the input
/// order. See [`MaxMinSolver::solve_with`] for the guarantees.
///
/// # Panics
///
/// Panics if a route references a link id outside `link_capacity_bps`, or a
/// capacity/cap is negative or NaN.
pub fn max_min_allocation(flows: &[FlowDemand<'_>], link_capacity_bps: &[f64]) -> Vec<f64> {
    for &c in link_capacity_bps {
        assert!(c >= 0.0 && !c.is_nan(), "negative or NaN link capacity {c}");
    }
    for f in flows {
        assert!(
            f.cap_bps >= 0.0 && !f.cap_bps.is_nan(),
            "negative or NaN flow cap"
        );
        for l in f.route {
            assert!(
                l.index() < link_capacity_bps.len(),
                "route references unknown link {l}"
            );
        }
    }
    let links: Vec<u32> = (0..link_capacity_bps.len() as u32).collect();
    let mut solver = MaxMinSolver::new();
    solver
        .solve_with(
            flows.len(),
            |i| flows[i].route,
            |i| flows[i].cap_bps,
            &links,
            link_capacity_bps,
        )
        .to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LinkId {
        LinkId(i)
    }

    fn demand(route: &[LinkId], cap: f64) -> FlowDemand<'_> {
        FlowDemand {
            route,
            cap_bps: cap,
        }
    }

    #[test]
    fn single_flow_gets_link_capacity() {
        let route = [l(0)];
        let rates = max_min_allocation(&[demand(&route, f64::INFINITY)], &[100.0]);
        assert_eq!(rates, vec![100.0]);
    }

    #[test]
    fn single_flow_respects_cap() {
        let route = [l(0)];
        let rates = max_min_allocation(&[demand(&route, 40.0)], &[100.0]);
        assert_eq!(rates, vec![40.0]);
    }

    #[test]
    fn two_flows_share_equally() {
        let r0 = [l(0)];
        let r1 = [l(0)];
        let rates = max_min_allocation(
            &[demand(&r0, f64::INFINITY), demand(&r1, f64::INFINITY)],
            &[100.0],
        );
        assert!((rates[0] - 50.0).abs() < 1e-9);
        assert!((rates[1] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn capped_flow_releases_share() {
        // One flow capped at 20 leaves 80 for the other.
        let r0 = [l(0)];
        let r1 = [l(0)];
        let rates = max_min_allocation(&[demand(&r0, 20.0), demand(&r1, f64::INFINITY)], &[100.0]);
        assert!((rates[0] - 20.0).abs() < 1e-9);
        assert!((rates[1] - 80.0).abs() < 1e-9);
    }

    #[test]
    fn classic_three_flow_two_link() {
        // Links L0 (cap 100) and L1 (cap 100).
        // f0 over L0+L1, f1 over L0, f2 over L1.
        // Max-min: all can have 50 -- at 50, both links carry 100 and
        // saturate simultaneously; everyone gets 50.
        let r0 = [l(0), l(1)];
        let r1 = [l(0)];
        let r2 = [l(1)];
        let rates = max_min_allocation(
            &[
                demand(&r0, f64::INFINITY),
                demand(&r1, f64::INFINITY),
                demand(&r2, f64::INFINITY),
            ],
            &[100.0, 100.0],
        );
        for r in &rates {
            assert!((r - 50.0).abs() < 1e-9, "{rates:?}");
        }
    }

    #[test]
    fn asymmetric_bottleneck() {
        // L0 cap 30, L1 cap 100. f0 over both, f1 over L1 only.
        // f0 bottlenecked at L0: 30 shared with nobody else on L0 -> but
        // fill: both rise to 30 (L0 saturates: f0 frozen at 30), then f1
        // continues to 70 on L1.
        let r0 = [l(0), l(1)];
        let r1 = [l(1)];
        let rates = max_min_allocation(
            &[demand(&r0, f64::INFINITY), demand(&r1, f64::INFINITY)],
            &[30.0, 100.0],
        );
        assert!((rates[0] - 30.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - 70.0).abs() < 1e-9, "{rates:?}");
    }

    #[test]
    fn empty_route_gets_cap() {
        let rates = max_min_allocation(&[demand(&[], 12.5)], &[]);
        assert_eq!(rates, vec![12.5]);
    }

    #[test]
    fn no_flows() {
        let rates = max_min_allocation(&[], &[10.0]);
        assert!(rates.is_empty());
    }

    #[test]
    fn zero_capacity_link_stalls_flow() {
        let r0 = [l(0)];
        let rates = max_min_allocation(&[demand(&r0, f64::INFINITY)], &[0.0]);
        assert_eq!(rates, vec![0.0]);
    }

    #[test]
    fn parallel_streams_beat_single_against_background() {
        // The mechanism behind the paper's Fig. 4: on a shared link, n
        // parallel streams of one transfer receive n/(n+b) of capacity
        // against b background flows.
        let link = [l(0)];
        let mut flows = Vec::new();
        // 4 transfer streams + 4 background flows, all uncapped.
        for _ in 0..8 {
            flows.push(demand(&link, f64::INFINITY));
        }
        let rates = max_min_allocation(&flows, &[80.0]);
        let transfer: f64 = rates[..4].iter().sum();
        let background: f64 = rates[4..].iter().sum();
        assert!((transfer - 40.0).abs() < 1e-9);
        assert!((background - 40.0).abs() < 1e-9);
    }

    #[test]
    fn reused_solver_matches_fresh_allocation() {
        // The same solver instance run back to back over different problems
        // must give exactly the answers of one-shot calls: buffer reuse
        // leaks no state between solves.
        let mut solver = MaxMinSolver::new();
        type Problem = (Vec<Vec<LinkId>>, Vec<f64>, Vec<f64>);
        let problems: Vec<Problem> = vec![
            (
                vec![vec![l(0)], vec![l(0)]],
                vec![f64::INFINITY; 2],
                vec![100.0],
            ),
            (
                vec![vec![l(0), l(1)], vec![l(1)]],
                vec![f64::INFINITY, 25.0],
                vec![30.0, 100.0],
            ),
            (vec![vec![l(1)]], vec![f64::INFINITY], vec![50.0, 80.0]),
        ];
        for (routes, caps, link_caps) in &problems {
            let links: Vec<u32> = (0..link_caps.len() as u32).collect();
            let got = solver
                .solve_with(
                    routes.len(),
                    |i| routes[i].as_slice(),
                    |i| caps[i],
                    &links,
                    link_caps,
                )
                .to_vec();
            let demands: Vec<FlowDemand<'_>> = routes
                .iter()
                .zip(caps)
                .map(|(r, &c)| FlowDemand {
                    route: r,
                    cap_bps: c,
                })
                .collect();
            let want = max_min_allocation(&demands, link_caps);
            assert_eq!(got, want, "solver reuse diverged");
        }
    }

    #[test]
    fn solver_ignores_links_outside_the_component() {
        // Links 0..4 exist globally, but only link 2 is in play. Entries for
        // the other links are stale garbage from a previous solve; the
        // answer must depend only on link 2.
        let mut solver = MaxMinSolver::new();
        let all: Vec<u32> = (0..4).collect();
        let caps = [10.0, 10.0, 60.0, 10.0];
        let busy_routes = [vec![l(0)], vec![l(1)], vec![l(3)]];
        let _ = solver.solve_with(
            3,
            |i| busy_routes[i].as_slice(),
            |_| f64::INFINITY,
            &all,
            &caps,
        );
        // Now a 2-flow component confined to link 2.
        let comp_routes = [vec![l(2)], vec![l(2)]];
        let rates = solver.solve_with(
            2,
            |i| comp_routes[i].as_slice(),
            |_| f64::INFINITY,
            &[2],
            &caps,
        );
        assert!((rates[0] - 30.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - 30.0).abs() < 1e-9, "{rates:?}");
    }

    #[test]
    fn conservation_and_feasibility_random() {
        // A deterministic pseudo-random stress: many flows over a small
        // grid of links; check feasibility invariants.
        use crate::rng::SimRng;
        let mut rng = SimRng::seed_from_u64(99);
        let caps: Vec<f64> = (0..6).map(|_| rng.uniform(10.0, 200.0)).collect();
        let mut routes: Vec<Vec<LinkId>> = Vec::new();
        for _ in 0..40 {
            let hops = 1 + rng.below(3) as usize;
            let mut route: Vec<LinkId> = Vec::new();
            for _ in 0..hops {
                let cand = LinkId(rng.below(6) as u32);
                if !route.contains(&cand) {
                    route.push(cand);
                }
            }
            routes.push(route);
        }
        let flows: Vec<FlowDemand<'_>> = routes
            .iter()
            .map(|r| FlowDemand {
                route: r,
                cap_bps: if r.len() == 1 { f64::INFINITY } else { 75.0 },
            })
            .collect();
        let rates = max_min_allocation(&flows, &caps);
        // Feasibility per link.
        for (li, &cap) in caps.iter().enumerate() {
            let total: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.route.iter().any(|l| l.index() == li))
                .map(|(_, r)| r)
                .sum();
            assert!(total <= cap * (1.0 + 1e-6), "link {li}: {total} > {cap}");
        }
        // Cap respected and bottleneck property.
        for (f, &r) in flows.iter().zip(&rates) {
            assert!(r <= f.cap_bps * (1.0 + 1e-9) + 1e-9);
            let at_cap = (r - f.cap_bps).abs() < 1e-6;
            let crosses_saturated = f.route.iter().any(|l| {
                let total: f64 = flows
                    .iter()
                    .zip(&rates)
                    .filter(|(g, _)| g.route.contains(l))
                    .map(|(_, x)| x)
                    .sum();
                total >= caps[l.index()] * (1.0 - 1e-6)
            });
            assert!(
                at_cap || crosses_saturated,
                "flow neither capped nor bottlenecked: rate {r}"
            );
        }
    }
}
