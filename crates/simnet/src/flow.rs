//! Max-min fair bandwidth allocation.
//!
//! The simulator uses a *fluid flow* model: at any instant every active flow
//! transfers at a constant rate, and the set of rates is the **max-min fair**
//! allocation subject to (a) every link's capacity and (b) each flow's own
//! rate cap (its TCP window/loss ceiling and endpoint disk/CPU limits).
//!
//! The allocation is computed by *progressive filling*: grow all flows'
//! rates together; whenever a flow hits its cap it freezes there; whenever a
//! link saturates, every unfrozen flow crossing it freezes at the current
//! fair share. This is the textbook definition of max-min fairness with
//! per-flow upper bounds and is how grid simulators (OptorSim, GridSim)
//! model TCP sharing.

use crate::topology::LinkId;

/// Input to the solver: one entry per active flow.
#[derive(Debug, Clone)]
pub struct FlowDemand<'a> {
    /// Directed links the flow traverses (empty for node-local flows).
    pub route: &'a [LinkId],
    /// The flow's own rate ceiling in bits per second
    /// (`f64::INFINITY` when uncapped).
    pub cap_bps: f64,
}

/// Computes the max-min fair allocation.
///
/// `link_capacity_bps[l]` is the capacity of link `l` (indexable by every
/// link id appearing in a route). Returns one rate per flow, in the input
/// order.
///
/// Guarantees (tested, including by property tests):
/// * no link's total allocated rate exceeds its capacity (within 1e-6
///   relative tolerance),
/// * no flow exceeds its cap,
/// * every flow is *bottlenecked*: it either runs at its cap or crosses at
///   least one saturated link (Pareto efficiency),
/// * flows with empty routes get exactly their cap.
///
/// # Panics
///
/// Panics if a route references a link id outside `link_capacity_bps`, or a
/// capacity/cap is negative or NaN.
pub fn max_min_allocation(flows: &[FlowDemand<'_>], link_capacity_bps: &[f64]) -> Vec<f64> {
    for &c in link_capacity_bps {
        assert!(c >= 0.0 && !c.is_nan(), "negative or NaN link capacity {c}");
    }
    for f in flows {
        assert!(
            f.cap_bps >= 0.0 && !f.cap_bps.is_nan(),
            "negative or NaN flow cap"
        );
        for l in f.route {
            assert!(
                l.index() < link_capacity_bps.len(),
                "route references unknown link {l}"
            );
        }
    }

    let n = flows.len();
    let mut rate = vec![0.0_f64; n];
    let mut frozen = vec![false; n];

    // Flows with empty routes consume no link capacity: give them their cap.
    for (i, f) in flows.iter().enumerate() {
        if f.route.is_empty() {
            rate[i] = f.cap_bps;
            frozen[i] = true;
        }
    }

    // Remaining capacity per link and the unfrozen flow count per link.
    let mut remaining: Vec<f64> = link_capacity_bps.to_vec();
    let mut users: Vec<u32> = vec![0; link_capacity_bps.len()];
    for (i, f) in flows.iter().enumerate() {
        if !frozen[i] {
            for l in f.route {
                users[l.index()] += 1;
            }
        }
    }

    // `level` is the common rate all unfrozen flows have reached so far.
    let mut level = 0.0_f64;
    loop {
        let active = frozen.iter().filter(|&&f| !f).count();
        if active == 0 {
            break;
        }

        // Next event: either some unfrozen flow reaches its cap, or some
        // link with users saturates at the shared fill level.
        let mut next_level = f64::INFINITY;
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] {
                next_level = next_level.min(f.cap_bps);
            }
        }
        for (l, (&rem, &u)) in remaining.iter().zip(users.iter()).enumerate() {
            let _ = l;
            if u > 0 {
                // All u unfrozen users rise together from `level`; the link
                // saturates when (x - level) * u == rem.
                next_level = next_level.min(level + rem / f64::from(u));
            }
        }

        if !next_level.is_finite() {
            // Unfrozen flows with infinite caps and no constraining links:
            // they must all have routes with zero users?? Cannot happen --
            // any unfrozen flow has a nonempty route and counts as a user on
            // each of its links. Defensive stop.
            for (i, f) in flows.iter().enumerate() {
                if !frozen[i] {
                    rate[i] = f.cap_bps;
                    frozen[i] = true;
                }
            }
            break;
        }

        let delta = (next_level - level).max(0.0);
        // Charge the growth to every link.
        if delta > 0.0 {
            for (l, rem) in remaining.iter_mut().enumerate() {
                if users[l] > 0 {
                    *rem = (*rem - delta * f64::from(users[l])).max(0.0);
                }
            }
        }
        level = next_level;

        // Freeze flows at their caps.
        let mut any_frozen = false;
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] && f.cap_bps <= level + 1e-12 {
                rate[i] = f.cap_bps;
                frozen[i] = true;
                any_frozen = true;
                for l in f.route {
                    users[l.index()] -= 1;
                }
            }
        }
        // Freeze flows crossing saturated links at the fill level.
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let saturated = f
                .route
                .iter()
                .any(|l| remaining[l.index()] <= 1e-9 * link_capacity_bps[l.index()].max(1.0));
            if saturated {
                rate[i] = level;
                frozen[i] = true;
                any_frozen = true;
                for l in f.route {
                    users[l.index()] -= 1;
                }
            }
        }

        if !any_frozen {
            // Numerical safety: next_level should always freeze something.
            // If rounding prevented it, freeze the minimum-cap flow.
            let mut best: Option<(usize, f64)> = None;
            for (i, f) in flows.iter().enumerate() {
                if !frozen[i] && best.is_none_or(|(_, c)| f.cap_bps < c) {
                    best = Some((i, f.cap_bps));
                }
            }
            if let Some((i, cap)) = best {
                rate[i] = cap.min(level);
                frozen[i] = true;
                for l in flows[i].route {
                    users[l.index()] -= 1;
                }
            } else {
                break;
            }
        }
    }

    rate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LinkId {
        LinkId(i)
    }

    fn demand(route: &[LinkId], cap: f64) -> FlowDemand<'_> {
        FlowDemand {
            route,
            cap_bps: cap,
        }
    }

    #[test]
    fn single_flow_gets_link_capacity() {
        let route = [l(0)];
        let rates = max_min_allocation(&[demand(&route, f64::INFINITY)], &[100.0]);
        assert_eq!(rates, vec![100.0]);
    }

    #[test]
    fn single_flow_respects_cap() {
        let route = [l(0)];
        let rates = max_min_allocation(&[demand(&route, 40.0)], &[100.0]);
        assert_eq!(rates, vec![40.0]);
    }

    #[test]
    fn two_flows_share_equally() {
        let r0 = [l(0)];
        let r1 = [l(0)];
        let rates = max_min_allocation(
            &[demand(&r0, f64::INFINITY), demand(&r1, f64::INFINITY)],
            &[100.0],
        );
        assert!((rates[0] - 50.0).abs() < 1e-9);
        assert!((rates[1] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn capped_flow_releases_share() {
        // One flow capped at 20 leaves 80 for the other.
        let r0 = [l(0)];
        let r1 = [l(0)];
        let rates = max_min_allocation(&[demand(&r0, 20.0), demand(&r1, f64::INFINITY)], &[100.0]);
        assert!((rates[0] - 20.0).abs() < 1e-9);
        assert!((rates[1] - 80.0).abs() < 1e-9);
    }

    #[test]
    fn classic_three_flow_two_link() {
        // Links L0 (cap 100) and L1 (cap 100).
        // f0 over L0+L1, f1 over L0, f2 over L1.
        // Max-min: all can have 50 -- at 50, both links carry 100 and
        // saturate simultaneously; everyone gets 50.
        let r0 = [l(0), l(1)];
        let r1 = [l(0)];
        let r2 = [l(1)];
        let rates = max_min_allocation(
            &[
                demand(&r0, f64::INFINITY),
                demand(&r1, f64::INFINITY),
                demand(&r2, f64::INFINITY),
            ],
            &[100.0, 100.0],
        );
        for r in &rates {
            assert!((r - 50.0).abs() < 1e-9, "{rates:?}");
        }
    }

    #[test]
    fn asymmetric_bottleneck() {
        // L0 cap 30, L1 cap 100. f0 over both, f1 over L1 only.
        // f0 bottlenecked at L0: 30 shared with nobody else on L0 -> but
        // fill: both rise to 30 (L0 saturates: f0 frozen at 30), then f1
        // continues to 70 on L1.
        let r0 = [l(0), l(1)];
        let r1 = [l(1)];
        let rates = max_min_allocation(
            &[demand(&r0, f64::INFINITY), demand(&r1, f64::INFINITY)],
            &[30.0, 100.0],
        );
        assert!((rates[0] - 30.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - 70.0).abs() < 1e-9, "{rates:?}");
    }

    #[test]
    fn empty_route_gets_cap() {
        let rates = max_min_allocation(&[demand(&[], 12.5)], &[]);
        assert_eq!(rates, vec![12.5]);
    }

    #[test]
    fn no_flows() {
        let rates = max_min_allocation(&[], &[10.0]);
        assert!(rates.is_empty());
    }

    #[test]
    fn zero_capacity_link_stalls_flow() {
        let r0 = [l(0)];
        let rates = max_min_allocation(&[demand(&r0, f64::INFINITY)], &[0.0]);
        assert_eq!(rates, vec![0.0]);
    }

    #[test]
    fn parallel_streams_beat_single_against_background() {
        // The mechanism behind the paper's Fig. 4: on a shared link, n
        // parallel streams of one transfer receive n/(n+b) of capacity
        // against b background flows.
        let link = [l(0)];
        let mut flows = Vec::new();
        // 4 transfer streams + 4 background flows, all uncapped.
        for _ in 0..8 {
            flows.push(demand(&link, f64::INFINITY));
        }
        let rates = max_min_allocation(&flows, &[80.0]);
        let transfer: f64 = rates[..4].iter().sum();
        let background: f64 = rates[4..].iter().sum();
        assert!((transfer - 40.0).abs() < 1e-9);
        assert!((background - 40.0).abs() < 1e-9);
    }

    #[test]
    fn conservation_and_feasibility_random() {
        // A deterministic pseudo-random stress: many flows over a small
        // grid of links; check feasibility invariants.
        use crate::rng::SimRng;
        let mut rng = SimRng::seed_from_u64(99);
        let caps: Vec<f64> = (0..6).map(|_| rng.uniform(10.0, 200.0)).collect();
        let mut routes: Vec<Vec<LinkId>> = Vec::new();
        for _ in 0..40 {
            let hops = 1 + rng.below(3) as usize;
            let mut route: Vec<LinkId> = Vec::new();
            for _ in 0..hops {
                let cand = LinkId(rng.below(6) as u32);
                if !route.contains(&cand) {
                    route.push(cand);
                }
            }
            routes.push(route);
        }
        let flows: Vec<FlowDemand<'_>> = routes
            .iter()
            .map(|r| FlowDemand {
                route: r,
                cap_bps: if r.len() == 1 { f64::INFINITY } else { 75.0 },
            })
            .collect();
        let rates = max_min_allocation(&flows, &caps);
        // Feasibility per link.
        for (li, &cap) in caps.iter().enumerate() {
            let total: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.route.iter().any(|l| l.index() == li))
                .map(|(_, r)| r)
                .sum();
            assert!(total <= cap * (1.0 + 1e-6), "link {li}: {total} > {cap}");
        }
        // Cap respected and bottleneck property.
        for (f, &r) in flows.iter().zip(&rates) {
            assert!(r <= f.cap_bps * (1.0 + 1e-9) + 1e-9);
            let at_cap = (r - f.cap_bps).abs() < 1e-6;
            let crosses_saturated = f.route.iter().any(|l| {
                let total: f64 = flows
                    .iter()
                    .zip(&rates)
                    .filter(|(g, _)| g.route.contains(l))
                    .map(|(_, x)| x)
                    .sum();
                total >= caps[l.index()] * (1.0 - 1e-6)
            });
            assert!(
                at_cap || crosses_saturated,
                "flow neither capped nor bottlenecked: rate {r}"
            );
        }
    }
}
