//! Deterministic pseudo-random number generation.
//!
//! The simulator implements its own small PRNG ([`SimRng`], a
//! xoshiro256\*\* core seeded through SplitMix64) instead of depending on the
//! `rand` crate: experiment reproducibility requires that the *exact* random
//! stream be stable across library versions and platforms, and the generator
//! is a dozen lines. Distribution helpers cover everything the simulation
//! needs (uniform, Bernoulli, exponential, normal, lognormal, Pareto).

/// A deterministic xoshiro256\*\* pseudo-random number generator.
///
/// ```
/// use datagrid_simnet::rng::SimRng;
///
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step, used for seeding and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        SimRng { state }
    }

    /// Derives an independent child generator for a named subcomponent.
    ///
    /// Forking by label lets every part of the simulation (each link's
    /// background traffic, each host's load process, each sensor's noise)
    /// consume an independent stream, so adding one component never perturbs
    /// another component's randomness.
    pub fn fork(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with fresh output from self's stream
        // position -- clone first so forking does not advance the parent.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut base = self.state[0] ^ self.state[3].rotate_left(17);
        base ^= h;
        SimRng::seed_from_u64(base)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad uniform range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        // Lemire-style rejection for unbiased sampling.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// An exponential variate with the given rate (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
        // Inverse transform; guard against ln(0).
        let u = 1.0 - self.next_f64();
        -u.ln() / rate
    }

    /// A standard normal variate (Box–Muller, one value per call).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// A lognormal variate parameterised by the *underlying* normal's
    /// `mu` and `sigma`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// A lognormal variate with the given *distribution* mean, with shape
    /// `sigma` (of the underlying normal). Useful for flow sizes: heavy
    /// tailed but with a controlled mean.
    pub fn lognormal_with_mean(&mut self, mean: f64, sigma: f64) -> f64 {
        assert!(mean > 0.0, "lognormal mean must be positive, got {mean}");
        let mu = mean.ln() - 0.5 * sigma * sigma;
        self.lognormal(mu, sigma)
    }

    /// A Pareto variate with minimum `xm` and shape `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `xm` or `alpha` is not strictly positive.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(
            xm > 0.0 && alpha > 0.0,
            "bad pareto parameters xm={xm} alpha={alpha}"
        );
        let u = 1.0 - self.next_f64();
        xm / u.powf(1.0 / alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SimRng::seed_from_u64(123);
        let mut b = SimRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_is_stable_and_independent() {
        let parent = SimRng::seed_from_u64(7);
        let mut c1 = parent.fork("bg:link0");
        let mut c2 = parent.fork("bg:link0");
        let mut c3 = parent.fork("bg:link1");
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), c3.next_u64());
        // Forking does not advance the parent.
        let mut p1 = parent.clone();
        let mut p2 = parent.clone();
        let _ = p1.fork("x");
        assert_eq!(p1.next_u64(), p2.next_u64());
    }

    #[test]
    fn unit_interval() {
        let mut rng = SimRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = SimRng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let x = rng.below(7) as usize;
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::seed_from_u64(13);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut rng = SimRng::seed_from_u64(17);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_with_mean_matches_mean() {
        let mut rng = SimRng::seed_from_u64(19);
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| rng.lognormal_with_mean(10.0, 1.0))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 10.0).abs() < 0.35, "mean {mean}");
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut rng = SimRng::seed_from_u64(23);
        for _ in 0..10_000 {
            assert!(rng.pareto(5.0, 1.5) >= 5.0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(29);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
