//! Per-stream TCP throughput model.
//!
//! The fluid flow solver (see [`crate::flow`]) decides how concurrent flows
//! share link capacity; this module decides how much a *single TCP stream*
//! could carry at most, independent of sharing. Two classic effects bound a
//! stream below the raw link capacity on wide-area paths:
//!
//! 1. **Window limit** — a stream can keep at most one receive window in
//!    flight, so its rate is at most `W / RTT`.
//! 2. **Loss limit** — with packet loss probability `p`, congestion
//!    avoidance bounds the rate near the Mathis et al. formula
//!    `(MSS / RTT) * (C / sqrt(p))` with `C ≈ sqrt(3/2)`.
//!
//! These two bounds are exactly why the paper's GridFTP parallel data
//! transfer (MODE E, multiple TCP streams) improves aggregate bandwidth on
//! the 30 Mbps WAN path: each extra stream brings its own window and its own
//! loss recovery, so `n` streams can carry close to `n×` a single stream's
//! ceiling until the link itself saturates.
//!
//! Slow start is modelled as a startup *transient*: the time the stream
//! spends ramping its congestion window before reaching its steady rate,
//! expressed as an equivalent extra delay ([`TcpParams::startup_penalty`]).

use crate::time::SimDuration;
use crate::topology::Bandwidth;

/// Mathis constant `sqrt(3/2)` for Reno-style congestion avoidance.
const MATHIS_C: f64 = 1.224_744_871_391_589;

/// Parameters describing a TCP stack and path loss environment.
///
/// ```
/// use datagrid_simnet::tcp::TcpParams;
/// use datagrid_simnet::time::SimDuration;
///
/// let tcp = TcpParams::default();
/// let cap = tcp.steady_rate(SimDuration::from_millis(20));
/// assert!(cap.as_mbps() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpParams {
    /// Maximum segment size in bytes (typical Ethernet: 1460).
    pub mss: u32,
    /// Receive/congestion window ceiling in bytes.
    pub max_window: u64,
    /// Initial congestion window in bytes (slow start entry point).
    pub initial_window: u64,
    /// Stationary packet loss probability on the path (0 disables the
    /// Mathis bound).
    pub loss_rate: f64,
}

impl Default for TcpParams {
    /// A 2005-era stack: 1460-byte MSS, 256 KiB window, 2-segment initial
    /// window, loss-free path.
    fn default() -> Self {
        TcpParams {
            mss: 1460,
            max_window: 256 * 1024,
            initial_window: 2 * 1460,
            loss_rate: 0.0,
        }
    }
}

impl TcpParams {
    /// Creates parameters with an explicit window ceiling and loss rate,
    /// keeping default MSS and initial window.
    ///
    /// # Panics
    ///
    /// Panics if `max_window` is zero or `loss_rate` is outside `[0, 1)`.
    pub fn new(max_window: u64, loss_rate: f64) -> Self {
        let p = TcpParams {
            max_window,
            loss_rate,
            ..TcpParams::default()
        };
        p.validate();
        p
    }

    fn validate(&self) {
        assert!(self.mss > 0, "MSS must be positive");
        assert!(self.max_window > 0, "window must be positive");
        assert!(
            self.initial_window > 0 && self.initial_window <= self.max_window,
            "initial window must be in (0, max_window]"
        );
        assert!(
            (0.0..1.0).contains(&self.loss_rate),
            "loss rate must be in [0, 1), got {}",
            self.loss_rate
        );
    }

    /// The window-limited rate `W / RTT`.
    pub fn window_rate(&self, rtt: SimDuration) -> Bandwidth {
        let rtt_s = rtt.as_secs_f64();
        if rtt_s <= 0.0 {
            // Zero-RTT paths (same node) are effectively unbounded.
            return Bandwidth::from_bps(1e15);
        }
        Bandwidth::from_bps(self.max_window as f64 * 8.0 / rtt_s)
    }

    /// The loss-limited (Mathis) rate, or `None` when the path is loss-free.
    pub fn mathis_rate(&self, rtt: SimDuration) -> Option<Bandwidth> {
        if self.loss_rate <= 0.0 {
            return None;
        }
        let rtt_s = rtt.as_secs_f64();
        if rtt_s <= 0.0 {
            return None;
        }
        let bps = (self.mss as f64 * 8.0 / rtt_s) * (MATHIS_C / self.loss_rate.sqrt());
        Some(Bandwidth::from_bps(bps))
    }

    /// The steady-state ceiling of one stream on a path with the given RTT:
    /// the tighter of the window and Mathis bounds.
    pub fn steady_rate(&self, rtt: SimDuration) -> Bandwidth {
        let w = self.window_rate(rtt);
        match self.mathis_rate(rtt) {
            Some(m) if m < w => m,
            _ => w,
        }
    }

    /// Extra completion delay attributable to slow start, relative to an
    /// ideal flow that runs at `steady_rate` from the first byte.
    ///
    /// During slow start the window doubles each RTT from
    /// `initial_window` until it reaches the steady window
    /// `W* = rate × RTT`; the stream spends `ceil(log2(W*/W0))` round trips
    /// sending only `W* - W0 < W*` bytes. The equivalent penalty is the ramp
    /// time minus the time those bytes would have taken at full rate.
    pub fn startup_penalty(&self, rtt: SimDuration, steady_rate: Bandwidth) -> SimDuration {
        let rtt_s = rtt.as_secs_f64();
        let rate = steady_rate.as_bytes_per_sec();
        if rtt_s <= 0.0 || rate <= 0.0 {
            return SimDuration::ZERO;
        }
        let target_window = (rate * rtt_s).max(self.initial_window as f64);
        let rounds = (target_window / self.initial_window as f64)
            .log2()
            .ceil()
            .max(0.0);
        if rounds == 0.0 {
            return SimDuration::ZERO;
        }
        // Bytes sent while ramping: W0 * (2^rounds - 1) ≈ target_window.
        let ramp_bytes = self.initial_window as f64 * (2f64.powf(rounds) - 1.0);
        let ramp_time = rounds * rtt_s;
        let ideal_time = ramp_bytes / rate;
        let penalty = (ramp_time - ideal_time).max(0.0);
        SimDuration::from_secs_f64(penalty)
    }

    /// Convenience: the startup penalty with the steady rate computed from
    /// this parameter set itself.
    pub fn startup_penalty_on(&self, rtt: SimDuration) -> SimDuration {
        self.startup_penalty(rtt, self.steady_rate(rtt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(m: u64) -> SimDuration {
        SimDuration::from_millis(m)
    }

    #[test]
    fn window_rate_scales_inverse_rtt() {
        let tcp = TcpParams::default();
        let r10 = tcp.window_rate(ms(10)).as_bps();
        let r20 = tcp.window_rate(ms(20)).as_bps();
        assert!((r10 / r20 - 2.0).abs() < 1e-9);
        // 256 KiB window over 10 ms: 262144*8/0.01 ≈ 209.7 Mbps.
        assert!((r10 / 1e6 - 209.7152).abs() < 1e-3);
    }

    #[test]
    fn lossless_path_has_no_mathis_bound() {
        let tcp = TcpParams::default();
        assert!(tcp.mathis_rate(ms(10)).is_none());
        assert_eq!(tcp.steady_rate(ms(10)), tcp.window_rate(ms(10)));
    }

    #[test]
    fn lossy_path_is_mathis_bound() {
        let tcp = TcpParams::new(8 * 1024 * 1024, 0.005);
        let steady = tcp.steady_rate(ms(20));
        let mathis = tcp.mathis_rate(ms(20)).unwrap();
        assert_eq!(steady, mathis);
        // MSS 1460 B, RTT 20 ms, p=0.005: ~10.1 Mbps.
        assert!(
            (mathis.as_mbps() - 10.11).abs() < 0.1,
            "{}",
            mathis.as_mbps()
        );
    }

    #[test]
    fn higher_loss_means_lower_rate() {
        let low = TcpParams::new(1 << 22, 0.001).steady_rate(ms(20));
        let high = TcpParams::new(1 << 22, 0.01).steady_rate(ms(20));
        assert!(low > high);
    }

    #[test]
    fn startup_penalty_positive_and_bounded() {
        let tcp = TcpParams::default();
        let rtt = ms(20);
        let rate = tcp.steady_rate(rtt);
        let pen = tcp.startup_penalty(rtt, rate);
        assert!(pen > SimDuration::ZERO);
        // Ramp takes log2(262144/2920) ≈ 6.5 → 7 rounds = 140 ms; penalty is
        // below the full ramp time.
        assert!(pen < ms(140));
    }

    #[test]
    fn startup_penalty_zero_for_zero_rtt() {
        let tcp = TcpParams::default();
        assert_eq!(
            tcp.startup_penalty(SimDuration::ZERO, Bandwidth::from_mbps(100.0)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn startup_penalty_grows_with_rtt() {
        let tcp = TcpParams::default();
        let p1 = tcp.startup_penalty_on(ms(5));
        let p2 = tcp.startup_penalty_on(ms(50));
        assert!(p2 > p1);
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn invalid_loss_rejected() {
        let _ = TcpParams::new(64 * 1024, 1.5);
    }
}
