//! Simulated time.
//!
//! Simulated time is counted in integer nanoseconds since the start of the
//! simulation. Two newtypes keep instants and spans statically distinct:
//! [`SimTime`] is a point on the simulated clock and [`SimDuration`] is a
//! span between two points. Integer representation makes event ordering
//! exact and platform independent.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An instant on the simulated clock, in nanoseconds since simulation start.
///
/// ```
/// use datagrid_simnet::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.as_secs_f64(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// ```
/// use datagrid_simnet::time::SimDuration;
///
/// let d = SimDuration::from_millis(1500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `secs` seconds after simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, non-finite, or overflows the clock.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The span from `earlier` to `self`.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is later than `self`
    /// (saturating, never panics).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on clock overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, non-finite, or overflows the clock.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The span as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// `true` if this is the empty span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

fn secs_to_nanos(secs: f64) -> u64 {
    assert!(
        secs.is_finite() && secs >= 0.0,
        "time in seconds must be finite and non-negative, got {secs}"
    );
    let nanos = secs * NANOS_PER_SEC as f64;
    assert!(
        nanos <= u64::MAX as f64,
        "time overflows the simulated clock: {secs} s"
    );
    nanos.round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("simulated clock overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("simulated clock underflow"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("negative simulated duration"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else {
            write!(f, "{:.3}us", s * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimDuration::default(), SimDuration::ZERO);
    }

    #[test]
    fn conversions_round_trip() {
        let d = SimDuration::from_secs_f64(1.25);
        assert_eq!(d.as_nanos(), 1_250_000_000);
        assert_eq!(d.as_secs_f64(), 1.25);
        assert_eq!(SimDuration::from_millis(1250), d);
        assert_eq!(SimDuration::from_micros(1_250_000), d);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimTime::from_secs_f64(1.0);
        let t1 = t0 + SimDuration::from_secs(2);
        assert_eq!(t1 - t0, SimDuration::from_secs(2));
        assert_eq!(t1.saturating_since(t0), SimDuration::from_secs(2));
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(300);
        let b = SimDuration::from_millis(200);
        assert_eq!(a + b, SimDuration::from_millis(500));
        assert_eq!(a - b, SimDuration::from_millis(100));
        assert_eq!(a * 3, SimDuration::from_millis(900));
        assert_eq!(a / 3, SimDuration::from_millis(100));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "negative simulated duration")]
    fn negative_duration_panics() {
        let _ = SimTime::ZERO - SimTime::from_secs_f64(1.0);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_micros(2).to_string(), "2.000us");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs_f64(1.0))
        );
    }
}
