//! A time-ordered event queue with stable FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A pending event: payload `T` scheduled at a [`SimTime`].
///
/// Events at equal times pop in insertion order, which keeps the simulation
/// deterministic regardless of heap internals.
#[derive(Debug)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-queue of `(SimTime, T)` events with stable ordering for ties.
///
/// ```
/// use datagrid_simnet::event::EventQueue;
/// use datagrid_simnet::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(20), "late");
/// q.push(SimTime::from_nanos(10), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early")));
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// The time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T: Clone> Clone for EventQueue<T> {
    fn clone(&self) -> Self {
        EventQueue {
            heap: self
                .heap
                .iter()
                .map(|e| Entry {
                    time: e.time,
                    seq: e.seq,
                    payload: e.payload.clone(),
                })
                .collect(),
            next_seq: self.next_seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 'c');
        q.push(t(10), 'a');
        q.push(t(20), 'b');
        assert_eq!(q.pop(), Some((t(10), 'a')));
        assert_eq!(q.pop(), Some((t(20), 'b')));
        assert_eq!(q.pop(), Some((t(30), 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clone_preserves_order() {
        let mut q = EventQueue::new();
        q.push(t(2), "b");
        q.push(t(1), "a");
        q.push(t(1), "a2");
        let mut c = q.clone();
        assert_eq!(c.pop(), Some((t(1), "a")));
        assert_eq!(c.pop(), Some((t(1), "a2")));
        assert_eq!(c.pop(), Some((t(2), "b")));
        // Original untouched.
        assert_eq!(q.len(), 3);
    }
}
