//! Network topology: nodes, directed links and shortest-path routing.
//!
//! A [`Topology`] is a directed graph. Physical full-duplex cables are added
//! with [`Topology::add_duplex_link`], which creates one directed link per
//! direction so that opposing transfers never contend with each other (as on
//! real switched Ethernet). Routing is static shortest path by latency,
//! computed once per source node on demand and cached.

use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;

use crate::time::SimDuration;

/// Identifier of a node in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

/// Identifier of a *directed* link in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub(crate) u32);

impl NodeId {
    /// The raw index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a node id from a raw index (for test fixtures and benchmark
    /// harnesses; ids built this way are only meaningful against the
    /// topology they were taken from).
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in the id space.
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index too large"))
    }
}

impl LinkId {
    /// The raw index of this link.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a link id from a raw index (for test fixtures and benchmark
    /// harnesses; ids built this way are only meaningful against the
    /// topology they were taken from).
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in the id space.
    pub fn from_index(index: usize) -> Self {
        LinkId(u32::try_from(index).expect("link index too large"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A link or interface capacity, stored in bits per second.
///
/// ```
/// use datagrid_simnet::topology::Bandwidth;
///
/// let gig = Bandwidth::from_gbps(1.0);
/// assert_eq!(gig.as_mbps(), 1000.0);
/// assert!(gig > Bandwidth::from_mbps(30.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Creates a bandwidth from bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is negative or non-finite.
    pub fn from_bps(bps: f64) -> Self {
        assert!(bps.is_finite() && bps >= 0.0, "bad bandwidth {bps} bps");
        Bandwidth(bps)
    }

    /// Creates a bandwidth from megabits per second.
    pub fn from_mbps(mbps: f64) -> Self {
        Bandwidth::from_bps(mbps * 1e6)
    }

    /// Creates a bandwidth from gigabits per second.
    pub fn from_gbps(gbps: f64) -> Self {
        Bandwidth::from_bps(gbps * 1e9)
    }

    /// The value in bits per second.
    pub fn as_bps(self) -> f64 {
        self.0
    }

    /// The value in megabits per second.
    pub fn as_mbps(self) -> f64 {
        self.0 / 1e6
    }

    /// The value in bytes per second.
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0 / 8.0
    }

    /// The time needed to serialise `bytes` at this rate, or
    /// [`SimDuration::MAX`] when the bandwidth is zero.
    pub fn time_for_bytes(self, bytes: u64) -> SimDuration {
        if self.0 <= 0.0 {
            return SimDuration::MAX;
        }
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.0)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.2}Gbps", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.2}Mbps", self.0 / 1e6)
        } else {
            write!(f, "{:.0}bps", self.0)
        }
    }
}

/// Static properties of a directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Transmission capacity.
    pub capacity: Bandwidth,
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Stationary packet loss probability on this link (feeds the TCP
    /// Mathis bound for paths crossing it; the fluid solver itself is
    /// loss-free).
    pub loss_rate: f64,
}

impl LinkSpec {
    /// Creates a loss-free link spec from capacity and one-way latency.
    pub fn new(capacity: Bandwidth, latency: SimDuration) -> Self {
        LinkSpec {
            capacity,
            latency,
            loss_rate: 0.0,
        }
    }

    /// Sets the link's packet loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `loss_rate` is outside `[0, 1)`.
    pub fn with_loss(mut self, loss_rate: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&loss_rate),
            "loss rate must be in [0, 1), got {loss_rate}"
        );
        self.loss_rate = loss_rate;
        self
    }
}

#[derive(Debug, Clone)]
pub(crate) struct LinkRecord {
    pub from: NodeId,
    pub to: NodeId,
    pub spec: LinkSpec,
}

#[derive(Debug, Clone)]
struct NodeRecord {
    name: String,
    /// Outgoing links.
    out: Vec<LinkId>,
    /// Every link incident to this node, in either direction. Maintained on
    /// [`Topology::add_link`] so fault handling and connection drops resolve
    /// a node's links in O(degree) instead of scanning the whole link table.
    incident: Vec<LinkId>,
}

/// A directed network graph with named nodes and capacity/latency links.
///
/// ```
/// use datagrid_simnet::prelude::*;
///
/// let mut topo = Topology::new();
/// let a = topo.add_node("alpha1");
/// let b = topo.add_node("hit0");
/// topo.add_duplex_link(a, b, LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_millis(4)));
/// assert_eq!(topo.node_by_name("hit0"), Some(b));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<NodeRecord>,
    links: Vec<LinkRecord>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a node with a (preferably unique) display name.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("too many nodes"));
        self.nodes.push(NodeRecord {
            name: name.into(),
            out: Vec::new(),
            incident: Vec::new(),
        });
        id
    }

    /// Adds a single *directed* link.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint does not exist or `from == to`.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) -> LinkId {
        assert!(from.index() < self.nodes.len(), "unknown node {from}");
        assert!(to.index() < self.nodes.len(), "unknown node {to}");
        assert_ne!(from, to, "self-links are not allowed");
        let id = LinkId(u32::try_from(self.links.len()).expect("too many links"));
        self.links.push(LinkRecord { from, to, spec });
        self.nodes[from.index()].out.push(id);
        self.nodes[from.index()].incident.push(id);
        self.nodes[to.index()].incident.push(id);
        id
    }

    /// Adds a full-duplex cable: one directed link in each direction with the
    /// same spec. Returns `(forward, reverse)` link ids.
    pub fn add_duplex_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (LinkId, LinkId) {
        (self.add_link(a, b, spec), self.add_link(b, a, spec))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The display name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.index()].name
    }

    /// Looks a node up by display name (linear scan; topologies are small).
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// The spec of a directed link.
    ///
    /// # Panics
    ///
    /// Panics if the link does not exist.
    pub fn link_spec(&self, link: LinkId) -> LinkSpec {
        self.links[link.index()].spec
    }

    /// The endpoints `(from, to)` of a directed link.
    ///
    /// # Panics
    ///
    /// Panics if the link does not exist.
    pub fn link_endpoints(&self, link: LinkId) -> (NodeId, NodeId) {
        let rec = &self.links[link.index()];
        (rec.from, rec.to)
    }

    pub(crate) fn link_records(&self) -> &[LinkRecord] {
        &self.links
    }

    /// Every directed link incident to `node` (either endpoint), in
    /// insertion order. O(1): the incidence lists are maintained as links
    /// are added.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn incident_links(&self, node: NodeId) -> &[LinkId] {
        &self.nodes[node.index()].incident
    }

    /// Renders the topology in Graphviz DOT format (for documentation and
    /// debugging: `dot -Tsvg`).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph topology {\n  rankdir=LR;\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = writeln!(out, "  n{i} [label=\"{}\"];", n.name);
        }
        // Render duplex pairs as one undirected-looking edge; lone directed
        // links keep their arrow.
        let mut seen = vec![false; self.links.len()];
        for (i, l) in self.links.iter().enumerate() {
            if seen[i] {
                continue;
            }
            let reverse = self.links.iter().enumerate().position(|(j, r)| {
                !seen[j] && j != i && r.from == l.to && r.to == l.from && r.spec == l.spec
            });
            let label = format!("{} / {}", l.spec.capacity, l.spec.latency);
            match reverse {
                Some(j) => {
                    seen[j] = true;
                    let _ = writeln!(
                        out,
                        "  n{} -> n{} [dir=both, label=\"{label}\"];",
                        l.from.index(),
                        l.to.index()
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "  n{} -> n{} [label=\"{label}\"];",
                        l.from.index(),
                        l.to.index()
                    );
                }
            }
            seen[i] = true;
        }
        out.push_str("}\n");
        out
    }

    /// The largest link capacity anywhere in the topology — the grid-wide
    /// "highest theoretical bandwidth" that the paper's `BW_P` factor
    /// normalises against. `None` for a linkless topology.
    pub fn max_link_capacity(&self) -> Option<Bandwidth> {
        self.links
            .iter()
            .map(|l| l.spec.capacity)
            .max_by(|a, b| a.partial_cmp(b).expect("capacities are finite"))
    }

    /// The combined packet loss probability along a path
    /// (`1 - Π(1 - loss_l)`).
    ///
    /// # Panics
    ///
    /// Panics if the path references unknown links.
    pub fn path_loss(&self, path: &Path) -> f64 {
        let survive: f64 = path
            .links()
            .iter()
            .map(|l| 1.0 - self.links[l.index()].spec.loss_rate)
            .product();
        1.0 - survive
    }

    /// The highest theoretical bandwidth of a path: the capacity of its
    /// narrowest link (the denominator of the paper's `BW_P` factor).
    /// Returns `None` for an empty (node-local) path.
    ///
    /// # Panics
    ///
    /// Panics if the path references unknown links.
    pub fn path_capacity(&self, path: &Path) -> Option<Bandwidth> {
        path.links()
            .iter()
            .map(|l| self.links[l.index()].spec.capacity)
            .min_by(|a, b| a.partial_cmp(b).expect("capacities are finite"))
    }

    /// Computes shortest-path routes (by latency, ties by hop count) from
    /// `src` to every reachable node. Used by [`RoutingTable`].
    fn dijkstra(&self, src: NodeId) -> Vec<Option<(LinkId, SimDuration)>> {
        // prev[v] = (link taken into v, total latency to v)
        let mut dist: Vec<Option<(SimDuration, u32)>> = vec![None; self.nodes.len()];
        let mut prev: Vec<Option<LinkId>> = vec![None; self.nodes.len()];
        let mut heap = BinaryHeap::new();
        dist[src.index()] = Some((SimDuration::ZERO, 0));
        heap.push(std::cmp::Reverse((SimDuration::ZERO, 0u32, src)));
        while let Some(std::cmp::Reverse((d, hops, u))) = heap.pop() {
            match dist[u.index()] {
                Some((bd, bh)) if (bd, bh) < (d, hops) => continue,
                _ => {}
            }
            for &lid in &self.nodes[u.index()].out {
                let rec = &self.links[lid.index()];
                let nd = d + rec.spec.latency;
                let nh = hops + 1;
                let better = match dist[rec.to.index()] {
                    None => true,
                    Some((bd, bh)) => (nd, nh) < (bd, bh),
                };
                if better {
                    dist[rec.to.index()] = Some((nd, nh));
                    prev[rec.to.index()] = Some(lid);
                    heap.push(std::cmp::Reverse((nd, nh, rec.to)));
                }
            }
        }
        (0..self.nodes.len())
            .map(|i| prev[i].map(|l| (l, dist[i].expect("reached node has distance").0)))
            .collect()
    }
}

/// A path through the network: the directed links from source to
/// destination, plus the total one-way latency.
///
/// The link sequence is stored behind an [`Arc`] so the engine can share a
/// route with the routing table instead of copying it per flow: cloning a
/// `Path` (or calling [`Path::links_shared`]) is O(1) and allocation-free.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Path {
    links: Arc<[LinkId]>,
    latency: SimDuration,
}

impl Path {
    /// The directed links traversed, in order.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// A shared handle on the link sequence (O(1), no allocation).
    pub(crate) fn links_shared(&self) -> Arc<[LinkId]> {
        Arc::clone(&self.links)
    }

    /// Total one-way propagation latency of the path.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Round-trip time over this path (twice the one-way latency; paths are
    /// symmetric for duplex topologies).
    pub fn rtt(&self) -> SimDuration {
        self.latency * 2
    }

    /// Number of hops.
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }
}

/// Precomputed all-pairs shortest-path routes over a [`Topology`].
#[derive(Debug, Clone)]
pub struct RoutingTable {
    node_count: usize,
    /// routes[src][dst]
    routes: Vec<Vec<Option<Path>>>,
}

impl RoutingTable {
    /// Computes routes for every ordered node pair.
    pub fn compute(topo: &Topology) -> Self {
        let n = topo.node_count();
        let mut routes = Vec::with_capacity(n);
        for s in 0..n {
            let src = NodeId(s as u32);
            let prev = topo.dijkstra(src);
            let mut row: Vec<Option<Path>> = Vec::with_capacity(n);
            for d in 0..n {
                if s == d {
                    row.push(Some(Path::default()));
                    continue;
                }
                // Walk predecessors back from dst.
                let mut links = Vec::new();
                let mut cur = d;
                let latency = match prev[d] {
                    None => {
                        row.push(None);
                        continue;
                    }
                    Some((_, lat)) => lat,
                };
                loop {
                    let (lid, _) = prev[cur].expect("path exists to intermediate node");
                    links.push(lid);
                    let from = topo.links[lid.index()].from;
                    if from == src {
                        break;
                    }
                    cur = from.index();
                }
                links.reverse();
                row.push(Some(Path {
                    links: links.into(),
                    latency,
                }));
            }
            routes.push(row);
        }
        RoutingTable {
            node_count: n,
            routes,
        }
    }

    /// The path from `src` to `dst`, or `None` if unreachable.
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range for the routed topology.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<&Path> {
        assert!(src.index() < self.node_count && dst.index() < self.node_count);
        self.routes[src.index()][dst.index()].as_ref()
    }

    /// Round-trip time between two nodes, if connected.
    pub fn rtt(&self, src: NodeId, dst: NodeId) -> Option<SimDuration> {
        self.path(src, dst).map(Path::rtt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(m: f64) -> Bandwidth {
        Bandwidth::from_mbps(m)
    }

    fn ms(m: u64) -> SimDuration {
        SimDuration::from_millis(m)
    }

    #[test]
    fn bandwidth_conversions() {
        assert_eq!(Bandwidth::from_gbps(1.0).as_bps(), 1e9);
        assert_eq!(Bandwidth::from_mbps(30.0).as_bytes_per_sec(), 3.75e6);
        assert_eq!(
            mbps(8.0).time_for_bytes(1_000_000),
            SimDuration::from_secs(1)
        );
        assert_eq!(Bandwidth::ZERO.time_for_bytes(1), SimDuration::MAX);
    }

    #[test]
    fn bandwidth_display() {
        assert_eq!(Bandwidth::from_gbps(1.0).to_string(), "1.00Gbps");
        assert_eq!(mbps(30.0).to_string(), "30.00Mbps");
        assert_eq!(Bandwidth::from_bps(500.0).to_string(), "500bps");
    }

    #[test]
    fn node_lookup_by_name() {
        let mut t = Topology::new();
        let a = t.add_node("alpha1");
        let b = t.add_node("lz02");
        assert_eq!(t.node_by_name("alpha1"), Some(a));
        assert_eq!(t.node_by_name("lz02"), Some(b));
        assert_eq!(t.node_by_name("nope"), None);
        assert_eq!(t.node_name(b), "lz02");
    }

    #[test]
    fn duplex_creates_two_links() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let (f, r) = t.add_duplex_link(a, b, LinkSpec::new(mbps(10.0), ms(1)));
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.link_endpoints(f), (a, b));
        assert_eq!(t.link_endpoints(r), (b, a));
    }

    #[test]
    fn incident_links_cover_both_directions() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        let (ab, ba) = t.add_duplex_link(a, b, LinkSpec::new(mbps(10.0), ms(1)));
        let (bc, cb) = t.add_duplex_link(b, c, LinkSpec::new(mbps(10.0), ms(1)));
        assert_eq!(t.incident_links(a), &[ab, ba]);
        assert_eq!(t.incident_links(b), &[ab, ba, bc, cb]);
        assert_eq!(t.incident_links(c), &[bc, cb]);
        assert_eq!(NodeId::from_index(1), b);
        assert_eq!(LinkId::from_index(ab.index()), ab);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_rejected() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        t.add_link(a, a, LinkSpec::new(mbps(1.0), ms(1)));
    }

    #[test]
    fn routing_line_topology() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        let (ab, _) = t.add_duplex_link(a, b, LinkSpec::new(mbps(10.0), ms(2)));
        let (bc, _) = t.add_duplex_link(b, c, LinkSpec::new(mbps(10.0), ms(3)));
        let rt = RoutingTable::compute(&t);
        let p = rt.path(a, c).expect("connected");
        assert_eq!(p.links(), &[ab, bc]);
        assert_eq!(p.latency(), ms(5));
        assert_eq!(p.rtt(), ms(10));
        assert_eq!(p.hop_count(), 2);
    }

    #[test]
    fn routing_prefers_lower_latency() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        // Direct a->c is slow; a->b->c is faster in latency.
        t.add_duplex_link(a, c, LinkSpec::new(mbps(10.0), ms(20)));
        t.add_duplex_link(a, b, LinkSpec::new(mbps(10.0), ms(2)));
        t.add_duplex_link(b, c, LinkSpec::new(mbps(10.0), ms(2)));
        let rt = RoutingTable::compute(&t);
        assert_eq!(rt.path(a, c).unwrap().hop_count(), 2);
        assert_eq!(rt.rtt(a, c), Some(ms(8)));
    }

    #[test]
    fn routing_unreachable_and_self() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let rt = RoutingTable::compute(&t);
        assert!(rt.path(a, b).is_none());
        let self_path = rt.path(a, a).expect("self path");
        assert_eq!(self_path.hop_count(), 0);
        assert_eq!(self_path.latency(), SimDuration::ZERO);
    }

    #[test]
    fn routing_tie_breaks_by_hops() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        // Two equal-latency routes a->c: direct (4ms) and via b (2+2ms).
        let (direct, _) = t.add_duplex_link(a, c, LinkSpec::new(mbps(10.0), ms(4)));
        t.add_duplex_link(a, b, LinkSpec::new(mbps(10.0), ms(2)));
        t.add_duplex_link(b, c, LinkSpec::new(mbps(10.0), ms(2)));
        let rt = RoutingTable::compute(&t);
        assert_eq!(rt.path(a, c).unwrap().links(), &[direct]);
    }
}

#[cfg(test)]
mod loss_tests {
    use super::*;

    #[test]
    fn link_loss_validated_and_combined() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        let spec_ab =
            LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_millis(1)).with_loss(0.01);
        let spec_bc =
            LinkSpec::new(Bandwidth::from_mbps(30.0), SimDuration::from_millis(1)).with_loss(0.02);
        t.add_duplex_link(a, b, spec_ab);
        t.add_duplex_link(b, c, spec_bc);
        let rt = RoutingTable::compute(&t);
        let p = rt.path(a, c).unwrap();
        let loss = t.path_loss(p);
        assert!((loss - (1.0 - 0.99 * 0.98)).abs() < 1e-12);
        assert_eq!(t.path_capacity(p), Some(Bandwidth::from_mbps(30.0)));
        // Self path: no links, no capacity bound, no loss.
        let self_path = rt.path(a, a).unwrap();
        assert_eq!(t.path_loss(self_path), 0.0);
        assert_eq!(t.path_capacity(self_path), None);
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn out_of_range_loss_rejected() {
        let _ = LinkSpec::new(Bandwidth::from_mbps(1.0), SimDuration::ZERO).with_loss(1.0);
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn dot_renders_nodes_and_duplex_edges() {
        let mut t = Topology::new();
        let a = t.add_node("alpha1");
        let b = t.add_node("switch");
        let c = t.add_node("probe");
        t.add_duplex_link(
            a,
            b,
            LinkSpec::new(Bandwidth::from_gbps(1.0), SimDuration::from_millis(1)),
        );
        t.add_link(
            b,
            c,
            LinkSpec::new(Bandwidth::from_mbps(10.0), SimDuration::from_millis(2)),
        );
        let dot = t.to_dot();
        assert!(dot.starts_with("digraph topology {"));
        assert!(dot.contains("label=\"alpha1\""));
        // Duplex pair folded into one dir=both edge.
        assert_eq!(dot.matches("dir=both").count(), 1);
        // The lone directed link keeps a plain arrow.
        assert!(dot.contains("n1 -> n2 [label="));
        assert!(dot.trim_end().ends_with('}'));
    }
}
