//! Small online statistics accumulators used throughout the simulator and
//! the experiment harness.

use crate::time::{SimDuration, SimTime};

/// Welford online accumulator for count/mean/variance/min/max.
///
/// ```
/// use datagrid_simnet::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), Some(1.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats::default()
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "statistics require finite samples, got {x}");
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// Time-weighted mean of a piecewise-constant signal.
///
/// Feed it `(time, new_value)` change points in nondecreasing time order;
/// the mean weights each value by how long it was held.
///
/// ```
/// use datagrid_simnet::stats::TimeWeightedMean;
/// use datagrid_simnet::time::SimTime;
///
/// let mut m = TimeWeightedMean::starting_at(SimTime::ZERO, 0.0);
/// m.set(SimTime::from_secs_f64(1.0), 10.0);
/// m.set(SimTime::from_secs_f64(3.0), 0.0);
/// // 0 for 1 s, 10 for 2 s.
/// assert_eq!(m.mean_until(SimTime::from_secs_f64(3.0)), 20.0 / 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeWeightedMean {
    start: SimTime,
    last_change: SimTime,
    current: f64,
    weighted_sum: f64,
}

impl TimeWeightedMean {
    /// Starts tracking at `start` with an initial value.
    pub fn starting_at(start: SimTime, initial: f64) -> Self {
        TimeWeightedMean {
            start,
            last_change: start,
            current: initial,
            weighted_sum: 0.0,
        }
    }

    /// Records that the signal changed to `value` at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the previous change point.
    pub fn set(&mut self, at: SimTime, value: f64) {
        assert!(at >= self.last_change, "time must be nondecreasing");
        self.weighted_sum += self.current * (at - self.last_change).as_secs_f64();
        self.last_change = at;
        self.current = value;
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Time-weighted mean over `[start, until]`.
    ///
    /// # Panics
    ///
    /// Panics if `until` precedes the last change point.
    pub fn mean_until(&self, until: SimTime) -> f64 {
        assert!(until >= self.last_change, "cannot average into the past");
        let total = (until - self.start).as_secs_f64();
        if total == 0.0 {
            return self.current;
        }
        let sum = self.weighted_sum + self.current * (until - self.last_change).as_secs_f64();
        sum / total
    }
}

/// Computes the arithmetic mean of a slice (0 when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Computes the median of a slice (0 when empty). Does not require the
/// input to be sorted.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("median requires comparable values"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Computes the `q`-quantile of a slice by linear interpolation between
/// order statistics (0 when empty). `q` is clamped to `[0, 1]`; the input
/// need not be sorted. Used by the benchmark harness for latency
/// percentiles.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("percentile requires comparable values")
    });
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Converts a throughput in bytes over a duration to bits per second.
pub fn throughput_bps(bytes: u64, elapsed: SimDuration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        bytes as f64 * 8.0 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn time_weighted_mean_piecewise() {
        let mut m = TimeWeightedMean::starting_at(SimTime::ZERO, 4.0);
        m.set(SimTime::from_secs_f64(2.0), 8.0);
        assert_eq!(m.current(), 8.0);
        let avg = m.mean_until(SimTime::from_secs_f64(4.0));
        assert!((avg - 6.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_mean_at_start() {
        let m = TimeWeightedMean::starting_at(SimTime::from_secs_f64(5.0), 3.0);
        assert_eq!(m.mean_until(SimTime::from_secs_f64(5.0)), 3.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert_eq!(percentile(&xs, 0.5), 2.5);
        assert!((percentile(&xs, 0.25) - 1.75).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn throughput_helper() {
        let bps = throughput_bps(1_000_000, SimDuration::from_secs(8));
        assert_eq!(bps, 1_000_000.0);
        assert_eq!(throughput_bps(1, SimDuration::ZERO), 0.0);
    }
}
