//! Cohort batching must be invisible: over random topologies, flow
//! populations, and fault schedules, the batched engine (one solver pass
//! per same-instant event cohort) and the per-event engine
//! (`set_event_batching(false)`) must emit byte-identical public event
//! streams and agree on every counter except the solver-pass bookkeeping
//! the batching exists to change.

use datagrid_simnet::fault::FaultPlan;
use datagrid_simnet::prelude::*;
use proptest::prelude::*;

/// Builds a dumbbell: srcs -- hub1 -- hub2 -- dsts, with a random-width
/// middle link so different cases stress different contention regimes.
/// Returns every directed link so fault schedules can target the lot.
#[allow(clippy::type_complexity)]
fn dumbbell(
    src_count: usize,
    dst_count: usize,
    middle_mbps: f64,
) -> (Topology, Vec<NodeId>, Vec<NodeId>, Vec<LinkId>) {
    let mut topo = Topology::new();
    let mut links = Vec::new();
    let hub1 = topo.add_node("hub1");
    let hub2 = topo.add_node("hub2");
    let (f, r) = topo.add_duplex_link(
        hub1,
        hub2,
        LinkSpec::new(
            Bandwidth::from_mbps(middle_mbps),
            SimDuration::from_millis(5),
        ),
    );
    links.extend([f, r]);
    let edge = || LinkSpec::new(Bandwidth::from_mbps(1000.0), SimDuration::from_millis(1));
    let srcs: Vec<NodeId> = (0..src_count)
        .map(|i| {
            let n = topo.add_node(format!("s{i}"));
            let (f, r) = topo.add_duplex_link(n, hub1, edge());
            links.extend([f, r]);
            n
        })
        .collect();
    let dsts: Vec<NodeId> = (0..dst_count)
        .map(|i| {
            let n = topo.add_node(format!("d{i}"));
            let (f, r) = topo.add_duplex_link(n, hub2, edge());
            links.extend([f, r]);
            n
        })
        .collect();
    (topo, srcs, dsts, links)
}

/// Runs one engine to exhaustion and renders its public event stream as
/// one line per event — the byte-level artifact the equivalence claim is
/// about.
fn drain_log(sim: &mut NetSim) -> String {
    let mut log = String::new();
    while let Some(ev) = sim.next_event() {
        log.push_str(&format!("{:?} {:?}\n", ev.time, ev.kind));
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same topology, same flows (several same-instant cohorts by
    /// construction), same fault schedule: the public event streams must
    /// be byte-identical with batching on and off, and every stat except
    /// the solver-pass counters must agree.
    #[test]
    fn batched_and_per_event_engines_emit_identical_streams(
        seed in 0u64..1_000_000,
        sizes in proptest::collection::vec(100_000u64..3_000_000, 4..24),
        middle_mbps in 20.0f64..300.0,
        srcs in 2usize..5,
        dsts in 2usize..5,
        flap_rate in 0.0f64..0.4,
    ) {
        let build = |batching: bool| {
            let (topo, s, d, links) = dumbbell(srcs, dsts, middle_mbps);
            let mut sim = NetSim::new(topo, seed);
            sim.set_event_batching(batching);
            if flap_rate > 0.01 {
                let mut frng = SimRng::seed_from_u64(seed ^ 0xFA017);
                sim.install_fault_plan(FaultPlan::random_link_flaps(
                    &mut frng,
                    &links,
                    SimDuration::from_secs(120),
                    flap_rate,
                    SimDuration::from_secs(2),
                ));
            }
            let mut rng = SimRng::seed_from_u64(seed);
            for (i, &size) in sizes.iter().enumerate() {
                let src = s[rng.below(s.len() as u64) as usize];
                let dst = d[rng.below(d.len() as u64) as usize];
                // Duplicate every third size so several flows share both
                // start instant and (often) completion instant — real
                // same-instant cohorts, not just the t=0 burst.
                let size = if i % 3 == 0 { size - (size % 1000) } else { size };
                sim.start_flow(FlowSpec::new(src, dst, size));
            }
            sim
        };

        let mut batched = build(true);
        let mut per_event = build(false);
        let log_a = drain_log(&mut batched);
        let log_b = drain_log(&mut per_event);
        prop_assert_eq!(log_a, log_b, "public event streams diverged");

        let a = batched.stats();
        let b = per_event.stats();
        prop_assert_eq!(a.events_processed, b.events_processed);
        prop_assert_eq!(a.flows_started, b.flows_started);
        prop_assert_eq!(a.flows_completed, b.flows_completed);
        prop_assert_eq!(a.bytes_completed, b.bytes_completed);
        prop_assert_eq!(a.fault_transitions, b.fault_transitions);
        prop_assert_eq!(a.flows_dropped, b.flows_dropped);
        // The whole point of batching: never more solver passes than the
        // per-event engine, and the per-event engine never batches.
        prop_assert_eq!(b.solves_avoided, 0);
        prop_assert_eq!(b.batched_solves, 0);
        prop_assert!(
            a.incremental_solves + a.full_solves <= b.incremental_solves + b.full_solves,
            "batching increased solver passes: {} vs {}",
            a.incremental_solves + a.full_solves,
            b.incremental_solves + b.full_solves
        );
    }
}
