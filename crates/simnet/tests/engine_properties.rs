//! Property-based tests of the simulation engine's global invariants.

use datagrid_simnet::prelude::*;
use proptest::prelude::*;

/// Builds a dumbbell: srcs -- hub1 -- hub2 -- dsts.
fn dumbbell(
    src_count: usize,
    dst_count: usize,
    middle_mbps: f64,
) -> (Topology, Vec<NodeId>, Vec<NodeId>) {
    let mut topo = Topology::new();
    let hub1 = topo.add_node("hub1");
    let hub2 = topo.add_node("hub2");
    topo.add_duplex_link(
        hub1,
        hub2,
        LinkSpec::new(
            Bandwidth::from_mbps(middle_mbps),
            SimDuration::from_millis(5),
        ),
    );
    let srcs: Vec<NodeId> = (0..src_count)
        .map(|i| {
            let n = topo.add_node(format!("s{i}"));
            topo.add_duplex_link(
                n,
                hub1,
                LinkSpec::new(Bandwidth::from_mbps(1000.0), SimDuration::from_millis(1)),
            );
            n
        })
        .collect();
    let dsts: Vec<NodeId> = (0..dst_count)
        .map(|i| {
            let n = topo.add_node(format!("d{i}"));
            topo.add_duplex_link(
                n,
                hub2,
                LinkSpec::new(Bandwidth::from_mbps(1000.0), SimDuration::from_millis(1)),
            );
            n
        })
        .collect();
    (topo, srcs, dsts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every started flow completes exactly once, bytes are conserved, and
    /// completion times are consistent with the bottleneck capacity.
    #[test]
    fn flows_complete_exactly_once_with_byte_conservation(
        sizes in proptest::collection::vec(1_000u64..5_000_000, 1..20),
        middle_mbps in 10.0f64..200.0,
        seed in 0u64..1000,
    ) {
        let (topo, srcs, dsts) = dumbbell(3, 3, middle_mbps);
        let mut sim = NetSim::new(topo, seed);
        let mut rng = SimRng::seed_from_u64(seed);
        let mut expected = std::collections::HashMap::new();
        for &size in &sizes {
            let s = srcs[rng.below(3) as usize];
            let d = dsts[rng.below(3) as usize];
            let id = sim.start_flow(FlowSpec::new(s, d, size));
            expected.insert(id, size);
        }
        let total: u64 = sizes.iter().sum();
        let mut seen = std::collections::HashMap::new();
        let mut last_time = SimTime::ZERO;
        while let Some(ev) = sim.next_event() {
            prop_assert!(ev.time >= last_time, "time went backwards");
            last_time = ev.time;
            if let EventKind::FlowCompleted(done) = ev.kind {
                prop_assert!(seen.insert(done.id, done.bytes).is_none(), "double completion");
                prop_assert_eq!(expected.get(&done.id), Some(&done.bytes));
            }
        }
        prop_assert_eq!(seen.len(), sizes.len());
        let delivered: u64 = seen.values().sum();
        prop_assert_eq!(delivered, total);

        // The whole batch cannot finish faster than the bottleneck allows.
        let min_secs = total as f64 * 8.0 / (middle_mbps * 1e6);
        prop_assert!(
            last_time.as_secs_f64() >= min_secs * 0.99,
            "batch finished impossibly fast: {} < {}",
            last_time.as_secs_f64(),
            min_secs
        );
    }

    /// Rates never exceed per-flow caps at any observation instant.
    #[test]
    fn instantaneous_rates_respect_caps(
        cap_mbps in 1.0f64..500.0,
        seed in 0u64..1000,
    ) {
        let (topo, srcs, dsts) = dumbbell(2, 2, 100.0);
        let mut sim = NetSim::new(topo, seed);
        let id = sim.start_flow(
            FlowSpec::new(srcs[0], dsts[0], 50_000_000).with_cap(Bandwidth::from_mbps(cap_mbps)),
        );
        let _ = sim.start_flow(FlowSpec::new(srcs[1], dsts[1], 10_000_000));
        // Observe at several instants.
        for step in 1..5u64 {
            sim.schedule_timer(SimTime::from_nanos(step * 50_000_000), step);
        }
        while let Some(ev) = sim.next_event() {
            if matches!(ev.kind, EventKind::TimerFired(_)) {
                if let Some(rate) = sim.flow_rate(id) {
                    prop_assert!(
                        rate.as_mbps() <= cap_mbps * (1.0 + 1e-9) + 1e-9,
                        "rate {} exceeds cap {}",
                        rate.as_mbps(),
                        cap_mbps
                    );
                    prop_assert!(rate.as_mbps() <= 100.0 * (1.0 + 1e-9));
                }
            }
        }
    }

    /// Identical seeds produce identical event streams even with
    /// background traffic.
    #[test]
    fn timeline_determinism_under_background(seed in 0u64..500) {
        let run = || {
            let (topo, srcs, dsts) = dumbbell(2, 2, 50.0);
            let mut sim = NetSim::new(topo, seed);
            sim.add_background(BackgroundProfile::new(srcs[1], dsts[1], 1.0, 500_000.0));
            sim.start_flow(FlowSpec::new(srcs[0], dsts[0], 20_000_000));
            let mut out = Vec::new();
            while let Some(ev) = sim.next_event() {
                if let EventKind::FlowCompleted(d) = ev.kind {
                    out.push((ev.time.as_nanos(), d.bytes));
                }
            }
            out
        };
        prop_assert_eq!(run(), run());
    }
}
