//! Property: every settled state the engine produces carries a valid
//! max-min certificate, and perturbed allocations are rejected.
//!
//! [`NetSim::verify_allocation`] re-derives, from the per-link flow
//! indexes alone, that the current rate assignment is feasible (no link
//! oversubscribed, no cap exceeded, bytes in range) and max-min fair
//! (every uncapped flow crosses a saturated link on which its share is
//! maximal — the bottleneck characterisation, which holds iff the
//! allocation is the max-min fair one). Both solver modes must certify at
//! every sampling instant of a randomized scenario, and nudging any live
//! flow's rate by ±1e-3 relative must falsify the proof.

use datagrid_simnet::prelude::*;
use proptest::prelude::*;

/// Sampling instants (odd millisecond offsets so they essentially never
/// tie with a completion or fault transition).
const SAMPLES_MS: [u64; 5] = [53, 487, 1_511, 4_211, 9_973];

struct Scenario {
    topo: Topology,
    flows: Vec<(NodeId, NodeId, u64)>,
    plan: FaultPlan,
}

/// Hub-and-spoke clusters around one backbone, mixing intra-cluster flows
/// (disjoint components) with cross-cluster ones (coupled through the
/// backbone) — the same world shape as the solver-equivalence property.
fn build_scenario(
    seed: u64,
    clusters: usize,
    hosts: usize,
    n_flows: usize,
    faults: bool,
) -> Scenario {
    let mut rng = SimRng::seed_from_u64(seed ^ 0xCE_47);
    let mut topo = Topology::new();
    let backbone = topo.add_node("backbone");
    let mut spoke_links = Vec::new();
    let mut cluster_hosts: Vec<Vec<NodeId>> = Vec::new();
    for c in 0..clusters {
        let hub = topo.add_node(format!("hub{c}"));
        let (up, _) = topo.add_duplex_link(
            hub,
            backbone,
            LinkSpec::new(
                Bandwidth::from_mbps(rng.uniform(50.0, 400.0)),
                SimDuration::from_millis(5),
            ),
        );
        spoke_links.push(up);
        let mut members = Vec::new();
        for h in 0..hosts {
            let node = topo.add_node(format!("c{c}h{h}"));
            let (link, _) = topo.add_duplex_link(
                node,
                hub,
                LinkSpec::new(
                    Bandwidth::from_mbps(rng.uniform(20.0, 500.0)),
                    SimDuration::from_millis(1),
                ),
            );
            spoke_links.push(link);
            members.push(node);
        }
        cluster_hosts.push(members);
    }

    let mut flows = Vec::new();
    for _ in 0..n_flows {
        let ca = rng.below(clusters as u64) as usize;
        let cb = if rng.below(2) == 0 {
            ca
        } else {
            rng.below(clusters as u64) as usize
        };
        let src = cluster_hosts[ca][rng.below(hosts as u64) as usize];
        let mut dst = cluster_hosts[cb][rng.below(hosts as u64) as usize];
        if dst == src {
            dst = cluster_hosts[(cb + 1) % clusters][0];
        }
        let bytes = 10_000_000 + rng.below(40_000_000);
        flows.push((src, dst, bytes));
    }

    let mut plan = FaultPlan::new();
    if faults {
        let flap = spoke_links[rng.below(spoke_links.len() as u64) as usize];
        plan = FaultPlan::random_link_flaps(
            &mut rng,
            &[flap],
            SimDuration::from_secs(15),
            0.2,
            SimDuration::from_secs(2),
        );
        plan.push(ScheduledFault {
            at: SimTime::from_secs_f64(rng.uniform(0.5, 5.0)),
            duration: SimDuration::from_secs_f64(rng.uniform(1.0, 6.0)),
            kind: FaultKind::HostDegraded {
                node: cluster_hosts[rng.below(clusters as u64) as usize][0],
                factor: rng.uniform(0.2, 0.9),
            },
        });
    }

    Scenario { topo, flows, plan }
}

/// Two flow-disjoint islands bridged through a backbone no flow crosses:
/// a solve for one island always leaves the other island's flow outside
/// its component, which is exactly what the transition certificate's
/// confinement check audits.
fn two_islands() -> (Topology, [NodeId; 4]) {
    let mut topo = Topology::new();
    let a0 = topo.add_node("a0");
    let a1 = topo.add_node("a1");
    let b0 = topo.add_node("b0");
    let b1 = topo.add_node("b1");
    let hub_a = topo.add_node("hubA");
    let hub_b = topo.add_node("hubB");
    let backbone = topo.add_node("backbone");
    let spec = || LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_millis(1));
    topo.add_duplex_link(a0, hub_a, spec());
    topo.add_duplex_link(a1, hub_a, spec());
    topo.add_duplex_link(b0, hub_b, spec());
    topo.add_duplex_link(b1, hub_b, spec());
    topo.add_duplex_link(hub_a, backbone, spec());
    topo.add_duplex_link(hub_b, backbone, spec());
    (topo, [a0, a1, b0, b1])
}

/// The injection hook corrupts an out-of-component flow's rate right
/// before the transition check: the delta audit must reject the solve and
/// name the corrupted flow in its counterexample.
#[test]
fn injected_transition_fault_is_detected_and_named() {
    let (topo, [a0, a1, b0, b1]) = two_islands();
    let mut sim = NetSim::new(topo, 11);
    sim.set_validation(true);
    let victim = sim.start_flow(FlowSpec::new(a0, a1, 50_000_000));
    sim.inject_transition_fault_for_validation(1e-3);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // Island B's solve never touches island A, so the armed ±1e-3
        // corruption of `victim` must be pinned on the solve's delta.
        sim.start_flow(FlowSpec::new(b0, b1, 50_000_000));
    }))
    .expect_err("corrupted transition must be rejected");
    let msg = err
        .downcast_ref::<String>()
        .expect("panic carries a rendered message")
        .clone();
    assert!(
        msg.contains("transition certificate violated"),
        "unexpected rejection message: {msg}"
    );
    assert!(
        msg.contains(&victim.to_string()),
        "counterexample must name the corrupted flow {victim}: {msg}"
    );
    assert!(
        msg.contains("outside the solved component"),
        "counterexample must state the confinement breach: {msg}"
    );
}

/// Validation is publicly unobservable: same seed with the audit on vs
/// off yields the identical event timeline; only the transition counters
/// (and no other stat) differ.
#[test]
fn transition_counters_count_only_under_validation() {
    let run = |validate: bool| {
        let (topo, [a0, a1, b0, b1]) = two_islands();
        let mut sim = NetSim::new(topo, 23);
        sim.set_validation(validate);
        sim.start_flow(FlowSpec::new(a0, a1, 20_000_000));
        sim.start_flow(FlowSpec::new(b0, b1, 30_000_000));
        sim.start_flow(FlowSpec::new(a0, b1, 10_000_000));
        let mut log = String::new();
        while let Some(ev) = sim.next_event() {
            log.push_str(&format!("{ev:?}\n"));
        }
        (log, sim.stats())
    };
    let (log_on, stats_on) = run(true);
    let (log_off, stats_off) = run(false);
    assert_eq!(log_on, log_off, "validation must not change the timeline");
    assert!(stats_on.transitions_certified > 0);
    assert!(stats_on.transition_flows_checked >= stats_on.transitions_certified);
    assert_eq!(stats_off.transitions_certified, 0);
    assert_eq!(stats_off.transition_flows_checked, 0);
    let mut masked = stats_on;
    masked.transitions_certified = 0;
    masked.transition_flows_checked = 0;
    assert_eq!(masked, stats_off, "only the audit counters may differ");
}

/// Counterexample rendering: every `Violation` variant names the offending
/// flow/link ids and the numbers behind the falsification — a rejected
/// certificate must be debuggable from its message alone.
#[test]
fn violation_messages_name_ids_and_rates() {
    let (mut topo, [a0, a1, ..]) = two_islands();
    let (link, _) = topo.add_duplex_link(
        a0,
        a1,
        LinkSpec::new(Bandwidth::from_mbps(10.0), SimDuration::from_millis(1)),
    );
    let mut sim = NetSim::new(topo, 5);
    let flow = sim.start_flow(FlowSpec::new(a0, a1, 1_000));
    let flow_tag = flow.to_string();
    let link_tag = link.to_string();
    assert!(
        flow_tag.starts_with('f'),
        "flow ids render as fN: {flow_tag}"
    );
    assert!(
        link_tag.starts_with('l'),
        "link ids render as lN: {link_tag}"
    );
    let cases: Vec<(Violation, Vec<String>)> = vec![
        (
            Violation::UnsolvedRate { flow },
            vec![flow_tag.clone(), "never solved".into()],
        ),
        (
            Violation::NegativeRate {
                flow,
                rate_bps: -42.5,
            },
            vec![flow_tag.clone(), "-42.5".into()],
        ),
        (
            Violation::CapExceeded {
                flow,
                rate_bps: 1_250.0,
                cap_bps: 1_000.0,
            },
            vec![flow_tag.clone(), "1250".into(), "1000".into()],
        ),
        (
            Violation::LinkOversubscribed {
                link,
                allocated_bps: 2_000.0,
                capacity_bps: 1_500.0,
            },
            vec![link_tag.clone(), "2000".into(), "1500".into()],
        ),
        (
            Violation::NotBottlenecked {
                flow,
                rate_bps: 640.0,
            },
            vec![flow_tag.clone(), "640".into(), "saturated".into()],
        ),
        (
            Violation::ByteAccounting {
                flow,
                remaining: -3.0,
                total_bytes: 9_000,
            },
            vec![flow_tag.clone(), "-3".into(), "9000".into()],
        ),
        (
            Violation::OutOfComponentRateChange {
                flow,
                before_bps: 100.0,
                after_bps: 101.0,
            },
            vec![
                flow_tag.clone(),
                "100".into(),
                "101".into(),
                "outside the solved component".into(),
            ],
        ),
        (
            Violation::OutOfComponentSettle {
                flow,
                before_remaining: 500.0,
                after_remaining: 400.0,
            },
            vec![
                flow_tag.clone(),
                "500".into(),
                "400".into(),
                "outside the solved component".into(),
            ],
        ),
        (
            Violation::TransitionByteMismatch {
                flow,
                rate_bps: 800.0,
                expected_remaining: 123.0,
                actual_remaining: 321.0,
            },
            vec![
                flow_tag.clone(),
                "800".into(),
                "123".into(),
                "321".into(),
                "re-integration".into(),
            ],
        ),
    ];
    for (violation, needles) in cases {
        let msg = violation.to_string();
        for needle in needles {
            assert!(
                msg.contains(&needle),
                "rendered violation {violation:?} must mention {needle:?}: {msg}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every reachable settled state certifies, in both solver modes, with
    /// faults flexing link capacities mid-run.
    #[test]
    fn every_settle_certifies_in_both_modes(
        seed in 0u64..10_000,
        clusters in 2usize..5,
        hosts in 2usize..4,
        n_flows in 4usize..20,
    ) {
        for mode in [SolverMode::Incremental, SolverMode::Full] {
            let scenario = build_scenario(seed, clusters, hosts, n_flows, true);
            let mut sim = NetSim::new(scenario.topo.clone(), seed);
            sim.set_solver_mode(mode);
            sim.install_fault_plan(scenario.plan.clone());
            for &(src, dst, bytes) in &scenario.flows {
                sim.start_flow(FlowSpec::new(src, dst, bytes));
            }
            let cert = sim.verify_allocation().expect("initial settle certifies");
            prop_assert_eq!(cert.flows, sim.active_flow_count());
            prop_assert!(cert.max_utilization <= 1.0 + 1e-6);
            for (k, &ms) in SAMPLES_MS.iter().enumerate() {
                sim.schedule_timer(SimTime::from_nanos(ms * 1_000_000 + 1), k as u64);
            }
            while let Some(ev) = sim.next_event() {
                if let EventKind::TimerFired(_) = ev.kind {
                    let cert = sim.verify_allocation().unwrap_or_else(|v| {
                        panic!("{mode:?} allocation falsified at {}: {v}", ev.time)
                    });
                    prop_assert_eq!(cert.flows, sim.active_flow_count());
                    prop_assert_eq!(
                        cert.capped_flows + cert.bottlenecked_flows,
                        cert.flows,
                        "every flow needs a cap or bottleneck witness"
                    );
                }
            }
            let done = sim.verify_allocation().expect("drained grid certifies");
            prop_assert_eq!(done.flows, 0);
            prop_assert_eq!(done.bytes_outstanding, 0.0);
        }
    }

    /// Nudging any live flow's rate by ±1e-3 relative falsifies the
    /// certificate in either direction: up breaks conservation on the
    /// flow's bottleneck link, down strips every crossed link of its
    /// saturation witness.
    #[test]
    fn perturbed_allocations_are_rejected(
        seed in 0u64..10_000,
        clusters in 2usize..4,
        hosts in 2usize..4,
        n_flows in 4usize..16,
    ) {
        for mode in [SolverMode::Incremental, SolverMode::Full] {
            let scenario = build_scenario(seed, clusters, hosts, n_flows, false);
            let mut sim = NetSim::new(scenario.topo.clone(), seed);
            sim.set_solver_mode(mode);
            let ids: Vec<FlowId> = scenario
                .flows
                .iter()
                .map(|&(src, dst, bytes)| sim.start_flow(FlowSpec::new(src, dst, bytes)))
                .collect();
            // Let transfers get under way; 10 MB over ≤500 Mbps spokes
            // keeps every flow live at 50 ms.
            sim.run_until(SimTime::from_nanos(50_000_001));
            sim.verify_allocation().expect("mid-run state certifies");
            for &id in &ids {
                let rate = sim.flow_rate(id).expect("flow still live").as_bps();
                prop_assert!(rate > 0.0, "fault-free flow must be running");
                let delta = rate * 1e-3;
                prop_assert!(sim.perturb_rate_for_validation(id, delta));
                prop_assert!(
                    sim.verify_allocation().is_err(),
                    "{mode:?}: +1e-3 perturbation of {id} went undetected"
                );
                prop_assert!(sim.perturb_rate_for_validation(id, -2.0 * delta));
                prop_assert!(
                    sim.verify_allocation().is_err(),
                    "{mode:?}: -1e-3 perturbation of {id} went undetected"
                );
                // Restore the exact solver rate before moving on.
                prop_assert!(sim.perturb_rate_for_validation(id, delta));
                sim.verify_allocation().expect("restored state certifies");
            }
        }
    }
}
