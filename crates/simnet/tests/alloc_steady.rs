//! Zero-allocation steady state for the engine's event dispatch.
//!
//! A counting global allocator wraps the system allocator; after one
//! warm-up churn cycle has sized every reusable buffer (slab, queue,
//! solver scratch, per-link indexes), draining a second identical flow
//! population through [`NetSim::next_event`] must not touch the heap at
//! all. This is the allocation-free-dispatch mirror of the
//! `shrink_scratch` high-water regression tests: those bound how big the
//! scratch may stay, this proves the hot loop never grows it.
//!
//! The allocator lives here (an integration test is its own crate root)
//! because every library crate carries `#![forbid(unsafe_code)]` and a
//! `GlobalAlloc` impl is necessarily unsafe.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use datagrid_simnet::prelude::*;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// a -- hub -- b plus hub -- c, all 100 Mbps / 1 ms.
fn star() -> (Topology, NodeId, NodeId, NodeId) {
    let mut topo = Topology::new();
    let a = topo.add_node("a");
    let b = topo.add_node("b");
    let c = topo.add_node("c");
    let hub = topo.add_node("hub");
    let spec = || LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_millis(1));
    topo.add_duplex_link(a, hub, spec());
    topo.add_duplex_link(b, hub, spec());
    topo.add_duplex_link(c, hub, spec());
    (topo, a, b, c)
}

fn churn_cycle(sim: &mut NetSim, a: NodeId, b: NodeId, c: NodeId, flows: usize) {
    for i in 0..flows {
        let (src, dst) = if i % 2 == 0 { (a, b) } else { (a, c) };
        sim.start_flow(FlowSpec::new(src, dst, 4_000_000 + (i as u64) * 37_000));
    }
    while sim.next_event().is_some() {}
    assert_eq!(sim.active_flow_count(), 0);
}

#[test]
fn warmed_event_drain_allocates_nothing() {
    let (topo, a, b, c) = star();
    let mut sim = NetSim::new(topo, 7);
    // Certificate checking builds diagnostic state per solve; this test is
    // about the dispatch path, so audit the allocation claim unclouded.
    sim.set_validation(false);
    // Auto-shrink would legitimately reallocate scratch mid-drain.
    sim.set_auto_shrink(false);

    const FLOWS: usize = 96;
    // Cycle 1 sizes every buffer; cycle 2 confirms the sizing is stable.
    churn_cycle(&mut sim, a, b, c, FLOWS);
    churn_cycle(&mut sim, a, b, c, FLOWS);

    // Measured cycle: identical population, buffers warm. Flow *starts*
    // are outside the claim (routes are Arc-shared but id bookkeeping may
    // rehash); the drained event loop itself must be allocation-free.
    for i in 0..FLOWS {
        let (src, dst) = if i % 2 == 0 { (a, b) } else { (a, c) };
        sim.start_flow(FlowSpec::new(src, dst, 4_000_000 + (i as u64) * 37_000));
    }
    let before = allocs();
    while sim.next_event().is_some() {}
    let after = allocs();
    assert_eq!(sim.active_flow_count(), 0);
    assert_eq!(
        after - before,
        0,
        "warmed event drain must not allocate (saw {} allocations)",
        after - before
    );
}

#[test]
fn warmed_drain_stays_allocation_free_with_batching_off() {
    // The per-event solve path (differential-testing mode) shares the
    // same reusable scratch; it must be equally allocation-free.
    let (topo, a, b, c) = star();
    let mut sim = NetSim::new(topo, 7);
    sim.set_validation(false);
    sim.set_auto_shrink(false);
    sim.set_event_batching(false);

    const FLOWS: usize = 64;
    churn_cycle(&mut sim, a, b, c, FLOWS);
    churn_cycle(&mut sim, a, b, c, FLOWS);

    for i in 0..FLOWS {
        let (src, dst) = if i % 2 == 0 { (a, b) } else { (a, c) };
        sim.start_flow(FlowSpec::new(src, dst, 4_000_000 + (i as u64) * 37_000));
    }
    let before = allocs();
    while sim.next_event().is_some() {}
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "per-event drain must not allocate (saw {} allocations)",
        after - before
    );
}
