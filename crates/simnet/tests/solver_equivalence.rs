//! Property: the incremental component solver is equivalent to the
//! from-scratch max-min allocation.
//!
//! Runs the same randomized scenario — topology, flow population and fault
//! schedule — through two engines that differ only in [`SolverMode`]:
//! `Full` re-solves the whole network from scratch on every perturbation
//! (the original engine behaviour, i.e. `max_min_allocation` over all
//! links), `Incremental` re-solves only the perturbed connected component
//! via the per-link flow index. Every observable — completion times and
//! byte counts, fault transitions, and instantaneous per-flow rates
//! sampled at timer instants — must agree within 1e-9 relative tolerance.
//! (Within a single component the two are bit-identical; the tolerance
//! absorbs ulp-scale differences in how progressive filling partitions
//! deltas when several components coexist.)

use std::collections::HashMap;

use datagrid_simnet::prelude::*;
use proptest::prelude::*;

const REL_TOL: f64 = 1e-9;

/// Sampling instants (odd millisecond offsets so they essentially never
/// tie with a completion or fault transition, which would make the
/// same-instant event order observable).
const SAMPLES_MS: [u64; 6] = [37, 311, 1_213, 3_407, 7_919, 16_127];

/// A randomized scenario, built deterministically from scalar parameters
/// so both engines see exactly the same world.
struct Scenario {
    topo: Topology,
    flows: Vec<(NodeId, NodeId, u64)>,
    plan: FaultPlan,
}

fn build_scenario(seed: u64, clusters: usize, hosts: usize, n_flows: usize) -> Scenario {
    let mut rng = SimRng::seed_from_u64(seed ^ 0xE0_01);
    let mut topo = Topology::new();
    let backbone = topo.add_node("backbone");
    let mut spoke_links = Vec::new();
    let mut cluster_hosts: Vec<Vec<NodeId>> = Vec::new();
    for c in 0..clusters {
        let hub = topo.add_node(format!("hub{c}"));
        let (up, _) = topo.add_duplex_link(
            hub,
            backbone,
            LinkSpec::new(
                Bandwidth::from_mbps(rng.uniform(50.0, 400.0)),
                SimDuration::from_millis(5),
            ),
        );
        spoke_links.push(up);
        let mut members = Vec::new();
        for h in 0..hosts {
            let node = topo.add_node(format!("c{c}h{h}"));
            let (link, _) = topo.add_duplex_link(
                node,
                hub,
                LinkSpec::new(
                    Bandwidth::from_mbps(rng.uniform(20.0, 500.0)),
                    SimDuration::from_millis(1),
                ),
            );
            spoke_links.push(link);
            members.push(node);
        }
        cluster_hosts.push(members);
    }

    // A mix of intra-cluster flows (disjoint components) and cross-cluster
    // flows (coupled through the backbone), so components merge and split
    // as flows come and go.
    let mut flows = Vec::new();
    for _ in 0..n_flows {
        let ca = rng.below(clusters as u64) as usize;
        let cb = if rng.below(2) == 0 {
            ca
        } else {
            rng.below(clusters as u64) as usize
        };
        let src = cluster_hosts[ca][rng.below(hosts as u64) as usize];
        let mut dst = cluster_hosts[cb][rng.below(hosts as u64) as usize];
        if dst == src {
            dst = cluster_hosts[(cb + 1) % clusters][0];
        }
        let bytes = 1_000_000 + rng.below(30_000_000);
        flows.push((src, dst, bytes));
    }

    // Fault schedule: random link flaps on two spokes plus one host
    // degradation, all inside a bounded horizon so stalled flows resume.
    let flap_a = spoke_links[rng.below(spoke_links.len() as u64) as usize];
    let flap_b = spoke_links[rng.below(spoke_links.len() as u64) as usize];
    let mut plan = FaultPlan::random_link_flaps(
        &mut rng,
        &[flap_a, flap_b],
        SimDuration::from_secs(20),
        0.2,
        SimDuration::from_secs(2),
    );
    let victim = cluster_hosts[rng.below(clusters as u64) as usize][0];
    plan.push(ScheduledFault {
        at: SimTime::from_secs_f64(rng.uniform(1.0, 10.0)),
        duration: SimDuration::from_secs_f64(rng.uniform(2.0, 8.0)),
        kind: FaultKind::HostDegraded {
            node: victim,
            factor: rng.uniform(0.2, 0.9),
        },
    });

    Scenario { topo, flows, plan }
}

/// What one engine run observed.
struct Observed {
    completions: HashMap<FlowId, (f64, u64)>,
    fault_transitions: usize,
    /// `samples[k][i]` = flow `i`'s rate (bps) at sampling instant `k`,
    /// `None` once the flow has completed.
    samples: Vec<Vec<Option<f64>>>,
}

fn run(scenario: &Scenario, mode: SolverMode, seed: u64) -> Observed {
    let mut sim = NetSim::new(scenario.topo.clone(), seed);
    sim.set_solver_mode(mode);
    sim.install_fault_plan(scenario.plan.clone());
    let ids: Vec<FlowId> = scenario
        .flows
        .iter()
        .map(|&(src, dst, bytes)| sim.start_flow(FlowSpec::new(src, dst, bytes)))
        .collect();
    for (k, &ms) in SAMPLES_MS.iter().enumerate() {
        sim.schedule_timer(SimTime::from_nanos(ms * 1_000_000 + 1), k as u64);
    }

    let mut observed = Observed {
        completions: HashMap::new(),
        fault_transitions: 0,
        samples: vec![Vec::new(); SAMPLES_MS.len()],
    };
    while let Some(ev) = sim.next_event() {
        match ev.kind {
            EventKind::FlowCompleted(done) => {
                let prev = observed
                    .completions
                    .insert(done.id, (ev.time.as_secs_f64(), done.bytes));
                assert!(prev.is_none(), "double completion for {:?}", done.id);
            }
            EventKind::TimerFired(token) => {
                observed.samples[token as usize] = ids
                    .iter()
                    .map(|&id| sim.flow_rate(id).map(|r| r.as_bps()))
                    .collect();
            }
            EventKind::FaultChanged(_) => observed.fault_transitions += 1,
        }
    }
    observed
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incremental_matches_from_scratch_allocation(
        seed in 0u64..10_000,
        clusters in 2usize..5,
        hosts in 2usize..4,
        n_flows in 4usize..20,
    ) {
        let scenario = build_scenario(seed, clusters, hosts, n_flows);
        let full = run(&scenario, SolverMode::Full, seed);
        let inc = run(&scenario, SolverMode::Incremental, seed);

        prop_assert_eq!(full.fault_transitions, inc.fault_transitions);
        prop_assert_eq!(full.completions.len(), inc.completions.len());
        for (id, &(t_full, bytes_full)) in &full.completions {
            let &(t_inc, bytes_inc) = inc
                .completions
                .get(id)
                .expect("flow completed in one mode but not the other");
            prop_assert_eq!(bytes_full, bytes_inc);
            prop_assert!(
                close(t_full, t_inc),
                "completion time diverged for {:?}: full {} vs incremental {}",
                id, t_full, t_inc
            );
        }

        for (k, (sf, si)) in full.samples.iter().zip(&inc.samples).enumerate() {
            prop_assert_eq!(sf.len(), si.len(), "sample {} missing in one mode", k);
            for (i, (rf, ri)) in sf.iter().zip(si).enumerate() {
                match (rf, ri) {
                    (Some(a), Some(b)) => prop_assert!(
                        close(*a, *b),
                        "rate diverged at sample {} flow {}: full {} vs incremental {}",
                        k, i, a, b
                    ),
                    (None, None) => {}
                    _ => prop_assert!(
                        false,
                        "flow {} alive in one mode but not the other at sample {}",
                        i, k
                    ),
                }
            }
        }
    }
}
