//! End-to-end integration tests of the paper's replica selection scenario
//! (Fig. 1) on the simulated three-cluster testbed.

use datagrid::prelude::*;

const MB: u64 = 1 << 20;

fn grid_with_file(seed: u64, size: u64) -> DataGrid {
    let mut grid = paper_testbed(seed).build();
    grid.catalog_mut()
        .register_logical("file-a".parse().unwrap(), size)
        .unwrap();
    for host in ["alpha4", "hit0", "lz02"] {
        grid.place_replica("file-a", canonical_host(host)).unwrap();
    }
    grid.warm_up(SimDuration::from_secs(180));
    grid
}

#[test]
fn table1_score_order_matches_transfer_time_order() {
    let grid = grid_with_file(1, 64 * MB);
    let client = grid.host_id("alpha1").unwrap();
    let candidates = grid.score_candidates(client, "file-a").unwrap();
    assert_eq!(candidates.len(), 3);
    // Paper ordering: alpha4 > gridhit0 > lz02.
    let names: Vec<&str> = candidates.iter().map(|c| c.host_name.as_str()).collect();
    assert_eq!(names, vec!["alpha4", "gridhit0", "lz02"]);

    // Counterfactual transfer times must be ordered the same way.
    let mut durations = Vec::new();
    for c in &candidates {
        let mut probe = grid.clone();
        let report = probe
            .fetch_from(client, "file-a", &c.host_name, FetchOptions::default())
            .unwrap();
        durations.push(report.transfer.duration());
    }
    assert!(
        durations.windows(2).all(|w| w[0] < w[1]),
        "durations {durations:?} must be strictly increasing"
    );
}

#[test]
fn fetch_selects_the_best_and_reports_factors() {
    let mut grid = grid_with_file(2, 64 * MB);
    let client = grid.host_id("alpha1").unwrap();
    let report = grid.fetch(client, "file-a").unwrap();
    assert_eq!(report.chosen_candidate().host_name, "alpha4");
    assert_eq!(report.client, "alpha1");
    assert!(!report.local_hit);
    assert_eq!(report.transfer.payload_bytes, 64 * MB);
    assert!(report.decision_latency.as_millis_f64() >= 5.0);
    for c in &report.candidates {
        assert!((0.0..=1.0).contains(&c.factors.bandwidth_fraction));
        assert!((0.0..=1.0).contains(&c.factors.cpu_idle));
        assert!((0.0..=1.0).contains(&c.factors.io_idle));
        assert!((0.0..=1.0).contains(&c.score));
    }
}

#[test]
fn local_replica_short_circuits_the_scenario() {
    let mut grid = grid_with_file(3, 64 * MB);
    grid.place_replica("file-a", "alpha1").unwrap();
    let client = grid.host_id("alpha1").unwrap();
    let report = grid.fetch(client, "file-a").unwrap();
    assert!(report.local_hit);
    assert_eq!(report.chosen_candidate().host_name, "alpha1");
    assert!(report.transfer.duration().as_secs_f64() < 5.0);
}

#[test]
fn parallel_fetch_is_faster_from_the_lossy_site() {
    let mut a = grid_with_file(4, 64 * MB);
    let mut b = a.clone();
    let client = a.host_id("gridhit1").unwrap();
    let single = a
        .fetch_from(client, "file-a", "lz02", FetchOptions::default())
        .unwrap();
    let parallel = b
        .fetch_from(
            client,
            "file-a",
            "lz02",
            FetchOptions::default().with_parallelism(8),
        )
        .unwrap();
    assert!(
        parallel.transfer.duration().as_secs_f64() < single.transfer.duration().as_secs_f64() * 0.5,
        "8 streams {} vs 1 {}",
        parallel.transfer.duration(),
        single.transfer.duration()
    );
}

#[test]
fn every_selection_policy_completes_the_scenario() {
    for policy in SelectionPolicy::all() {
        let mut grid = grid_with_file(5, 16 * MB);
        grid.selector_mut().set_policy(policy.clone());
        let client = grid.host_id("alpha2").unwrap();
        let report = grid.fetch(client, "file-a").unwrap();
        assert_eq!(
            report.transfer.payload_bytes,
            16 * MB,
            "policy {}",
            policy.name()
        );
    }
}

#[test]
fn weights_change_selection_outcomes() {
    // With IO-only weights the selector follows IO idleness, not bandwidth.
    let mut grid = grid_with_file(6, 16 * MB);
    let client = grid.host_id("alpha1").unwrap();
    let bw_order = grid.score_candidates(client, "file-a").unwrap();
    grid.selector_mut()
        .set_cost_model(CostModel::new(Weights::new(0.0, 0.0, 1.0)));
    let io_order = grid.score_candidates(client, "file-a").unwrap();
    let bw_names: Vec<&str> = bw_order.iter().map(|c| c.host_name.as_str()).collect();
    let io_names: Vec<&str> = io_order.iter().map(|c| c.host_name.as_str()).collect();
    // The IO ranking reflects IO idleness ordering.
    let io_sorted_by_factor = {
        let mut v = io_order.clone();
        v.sort_by(|a, b| b.factors.io_idle.partial_cmp(&a.factors.io_idle).unwrap());
        v.iter().map(|c| c.host_name.clone()).collect::<Vec<_>>()
    };
    assert_eq!(io_names, io_sorted_by_factor);
    // And the scores actually changed relative to the bandwidth model.
    assert_ne!(
        bw_order.iter().map(|c| c.score).collect::<Vec<_>>(),
        io_order.iter().map(|c| c.score).collect::<Vec<_>>(),
        "{bw_names:?} vs {io_names:?}"
    );
}

#[test]
fn fetch_errors_are_reported() {
    let mut grid = paper_testbed(7).build();
    let client = grid.host_id("alpha1").unwrap();
    assert!(matches!(
        grid.fetch(client, "missing").unwrap_err(),
        GridError::Catalog(_)
    ));
    grid.catalog_mut()
        .register_logical("empty".parse().unwrap(), MB)
        .unwrap();
    assert!(matches!(
        grid.fetch(client, "empty").unwrap_err(),
        GridError::NoReplicas { .. }
    ));
}

#[test]
fn attribute_discovery_feeds_the_scenario() {
    use datagrid::catalog::prelude::AttributeSet;
    let mut grid = paper_testbed(8).build();
    let mut attrs = AttributeSet::new();
    attrs.set("experiment".parse().unwrap(), "cms");
    attrs.set("format".parse().unwrap(), "root");
    grid.catalog_mut()
        .register_logical_with_attributes("hep/run42/events".parse().unwrap(), 16 * MB, attrs)
        .unwrap();
    grid.place_replica("hep/run42/events", "alpha4").unwrap();
    grid.warm_up(SimDuration::from_secs(60));

    // The application starts from data characteristics, not a name.
    let found = grid.discover(&[("experiment", "cms")]);
    assert_eq!(found.len(), 1);
    assert!(grid.discover(&[("experiment", "atlas")]).is_empty());

    let client = grid.host_id("alpha2").unwrap();
    let report = grid.fetch(client, found[0].as_str()).unwrap();
    assert_eq!(report.transfer.payload_bytes, 16 * MB);
}

#[test]
fn jobs_stage_compute_and_return_results() {
    use datagrid::core::job::JobSpec;
    let mut grid = grid_with_file(9, 32 * MB);
    let client = grid.host_id("gridhit1").unwrap();
    let job = JobSpec::new("analysis")
        .with_input("file-a")
        .with_compute_work(60.0) // 60 GHz-seconds
        .with_output(4 * MB, "alpha1")
        .with_options(FetchOptions::default().with_parallelism(4));
    let report = grid.run_job(client, &job).unwrap();
    assert_eq!(report.client, "gridhit1");
    assert_eq!(report.staged.len(), 1);
    assert!(report.stage_in > SimDuration::ZERO);
    // gridhit1: 2.8 GHz, 1 core, some load -> compute between 21 s (idle)
    // and ~430 s (5% floor).
    let c = report.compute.as_secs_f64();
    assert!((20.0..450.0).contains(&c), "compute {c}");
    let out = report.stage_out.as_ref().expect("stage-out requested");
    assert_eq!(out.payload_bytes, 4 * MB);
    assert!((0.0..=1.0).contains(&report.data_fraction()));
    assert!(report.total >= report.stage_in + report.compute);
}

#[test]
fn job_with_local_inputs_is_compute_dominated() {
    use datagrid::core::job::JobSpec;
    let mut grid = grid_with_file(10, 32 * MB);
    grid.place_replica("file-a", "alpha1").unwrap();
    let client = grid.host_id("alpha1").unwrap();
    let job = JobSpec::new("local")
        .with_input("file-a")
        .with_compute_work(400.0);
    let report = grid.run_job(client, &job).unwrap();
    assert!(report.staged[0].local_hit);
    assert!(
        report.data_fraction() < 0.5,
        "local staging should not dominate: {}",
        report.data_fraction()
    );
    // No stage-out requested.
    assert!(report.stage_out.is_none());
}

#[test]
fn fetch_with_privacy_protection_costs_cpu_on_the_lan() {
    use datagrid::gridftp::transfer::DataChannelProtection;
    let mut clear_grid = grid_with_file(11, 128 * MB);
    let mut private_grid = clear_grid.clone();
    let client = clear_grid.host_id("alpha1").unwrap();
    let clear = clear_grid
        .fetch_from(client, "file-a", "alpha4", FetchOptions::default())
        .unwrap();
    let private = private_grid
        .fetch_from(
            client,
            "file-a",
            "alpha4",
            FetchOptions::default().with_protection(DataChannelProtection::Private),
        )
        .unwrap();
    assert!(
        private.transfer.duration().as_secs_f64() > clear.transfer.duration().as_secs_f64() * 1.1,
        "PROT P must slow the LAN fetch: {} vs {}",
        private.transfer.duration(),
        clear.transfer.duration()
    );
}
