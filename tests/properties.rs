//! Property-based tests over the public API (proptest).

use datagrid::catalog::prelude::*;
use datagrid::core::cost::{CostModel, Weights};
use datagrid::core::factors::SystemFactors;
use datagrid::gridftp::mode::TransferMode;
use datagrid::simnet::flow::{max_min_allocation, FlowDemand};
use datagrid::simnet::prelude::*;
use proptest::prelude::*;

proptest! {
    /// The max-min solver never over-allocates a link, never exceeds a
    /// flow's cap, and leaves every flow either capped or bottlenecked.
    #[test]
    fn max_min_allocation_is_feasible_and_pareto(
        caps in proptest::collection::vec(1.0f64..1000.0, 1..8),
        flow_specs in proptest::collection::vec(
            (0usize..8, 1usize..4, prop_oneof![Just(f64::INFINITY), 1.0f64..500.0]),
            1..24,
        ),
    ) {
        // Build a line topology with `caps.len()` duplex links so routes are
        // valid contiguous segments.
        let mut topo = Topology::new();
        let nodes: Vec<NodeId> = (0..=caps.len())
            .map(|i| topo.add_node(format!("n{i}")))
            .collect();
        let mut links = Vec::new();
        for (i, cap) in caps.iter().enumerate() {
            let (fwd, _) = topo.add_duplex_link(
                nodes[i],
                nodes[i + 1],
                LinkSpec::new(Bandwidth::from_bps(*cap), SimDuration::from_millis(1)),
            );
            links.push(fwd);
        }
        let routes: Vec<Vec<LinkId>> = flow_specs
            .iter()
            .map(|(start, len, _)| {
                let s = start % caps.len();
                let e = (s + len).min(caps.len());
                links[s..e].to_vec()
            })
            .collect();
        // Capacity indexed by link id: duplex created 2 links per cap.
        let link_caps: Vec<f64> = (0..topo.link_count())
            .map(|i| caps[i / 2])
            .collect();
        let demands: Vec<FlowDemand<'_>> = routes
            .iter()
            .zip(&flow_specs)
            .map(|(r, (_, _, cap))| FlowDemand { route: r, cap_bps: *cap })
            .collect();

        let rates = max_min_allocation(&demands, &link_caps);
        prop_assert_eq!(rates.len(), demands.len());

        // Feasibility per link.
        for (li, &cap) in link_caps.iter().enumerate() {
            let used: f64 = demands
                .iter()
                .zip(&rates)
                .filter(|(d, _)| d.route.iter().any(|l| l.index() == li))
                .map(|(_, r)| *r)
                .sum();
            prop_assert!(used <= cap * (1.0 + 1e-6), "link {} used {} > {}", li, used, cap);
        }
        // Cap respected + bottleneck (Pareto) property.
        for (d, &r) in demands.iter().zip(&rates) {
            prop_assert!(r <= d.cap_bps * (1.0 + 1e-9) + 1e-9);
            let at_cap = d.cap_bps.is_finite() && (r - d.cap_bps).abs() < 1e-6;
            let bottlenecked = d.route.iter().any(|l| {
                let used: f64 = demands
                    .iter()
                    .zip(&rates)
                    .filter(|(e, _)| e.route.contains(l))
                    .map(|(_, x)| *x)
                    .sum();
                used >= link_caps[l.index()] * (1.0 - 1e-6)
            });
            prop_assert!(at_cap || bottlenecked || d.route.is_empty());
        }
    }

    /// The cost model is monotone in every factor and bounded in [0, 1].
    #[test]
    fn cost_model_monotone_and_bounded(
        bw in 0.0f64..1.0, cpu in 0.0f64..1.0, io in 0.0f64..1.0,
        dbw in 0.0f64..0.5,
        wb in 0.01f64..10.0, wc in 0.01f64..10.0, wi in 0.01f64..10.0,
    ) {
        let model = CostModel::new(Weights::normalized(wb, wc, wi));
        let base = model.score(&SystemFactors::new(bw, cpu, io));
        prop_assert!((0.0..=1.0).contains(&base));
        let better = model.score(&SystemFactors::new((bw + dbw).min(1.0), cpu, io));
        prop_assert!(better >= base - 1e-12);
    }

    /// MODE E wire bytes always cover the payload with bounded overhead,
    /// and stream splitting conserves bytes.
    #[test]
    fn mode_e_framing_invariants(
        payload in 0u64..(1 << 32),
        block in 1u32..(1 << 20),
        streams in 1u32..64,
    ) {
        let mode = TransferMode::Extended { block_size: block };
        let wire = mode.wire_bytes(payload);
        prop_assert!(wire >= payload + 17); // at least the EOD block
        // Overhead bounded by one header per block plus EOD.
        let blocks = payload.div_ceil(u64::from(block));
        prop_assert_eq!(wire, payload + 17 * (blocks + 1));

        let parts = TransferMode::split_across_streams(payload, streams);
        prop_assert_eq!(parts.len(), streams as usize);
        prop_assert_eq!(parts.iter().sum::<u64>(), payload);
        let min = parts.iter().min().unwrap();
        let max = parts.iter().max().unwrap();
        prop_assert!(max - min <= 1, "even split: {} vs {}", min, max);
    }

    /// Logical file names round-trip through display/parse whenever they
    /// validate.
    #[test]
    fn lfn_round_trip(name in "[a-zA-Z0-9._-]{1,40}(/[a-zA-Z0-9._-]{1,10}){0,3}") {
        let lfn = LogicalFileName::new(name.clone());
        prop_assert!(lfn.is_ok(), "{name} should be valid");
        let lfn = lfn.unwrap();
        let back: LogicalFileName = lfn.to_string().parse().unwrap();
        prop_assert_eq!(back, lfn);
    }

    /// PFN URLs round-trip.
    #[test]
    fn pfn_round_trip(
        host in "[a-z0-9][a-z0-9.-]{0,20}",
        path in "(/[a-zA-Z0-9._-]{1,12}){1,4}",
    ) {
        let pfn = PhysicalFileName::new(host, path).unwrap();
        let back: PhysicalFileName = pfn.to_string().parse().unwrap();
        prop_assert_eq!(back, pfn);
    }

    /// Catalog add/remove keeps replica counts consistent and never loses
    /// the last copy.
    #[test]
    fn catalog_replica_counting(hosts in proptest::collection::vec("[a-z]{3,8}", 1..8)) {
        let mut cat = ReplicaCatalog::new();
        let lfn: LogicalFileName = "prop-file".parse().unwrap();
        cat.register_logical(lfn.clone(), 1).unwrap();
        let mut unique = hosts.clone();
        unique.sort();
        unique.dedup();
        for h in &unique {
            cat.add_replica(&lfn, format!("gsiftp://{h}/d/f").parse().unwrap()).unwrap();
        }
        prop_assert_eq!(cat.replicas(&lfn).unwrap().len(), unique.len());
        // Remove all but one.
        for h in &unique[1..] {
            cat.remove_replica(&lfn, &format!("gsiftp://{h}/d/f").parse().unwrap()).unwrap();
        }
        prop_assert_eq!(cat.replicas(&lfn).unwrap().len(), 1);
        let err = cat.remove_replica(
            &lfn,
            &format!("gsiftp://{}/d/f", unique[0]).parse().unwrap(),
        );
        let is_last_replica = matches!(err, Err(CatalogError::LastReplica { .. }));
        prop_assert!(is_last_replica);
    }

    /// TCP: more loss or more RTT never increases the steady rate.
    #[test]
    fn tcp_rate_monotonic(
        rtt_ms in 1u64..500,
        loss in 1e-5f64..0.1,
        factor in 1.1f64..5.0,
    ) {
        let tcp = TcpParams::new(1 << 20, loss);
        let r0 = tcp.steady_rate(SimDuration::from_millis(rtt_ms));
        let r_rtt = tcp.steady_rate(SimDuration::from_millis(
            (rtt_ms as f64 * factor) as u64 + 1,
        ));
        prop_assert!(r_rtt <= r0);
        let lossier = TcpParams::new(1 << 20, (loss * factor).min(0.9));
        let r_loss = lossier.steady_rate(SimDuration::from_millis(rtt_ms));
        prop_assert!(r_loss <= r0);
    }
}
