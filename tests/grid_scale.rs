//! Grid-scale replay regressions: the concurrent replay path must
//! reproduce the paper's single-client behaviour exactly, and failover
//! under load must stay scoped to the clients the fault actually hits.

use datagrid::prelude::*;
use datagrid::testbed::sites::paper_testbed_with;

const MB: u64 = 1 << 20;

/// Table 1 pin: `SelectionMode::Static` plus a single replayed client
/// reproduces the paper's ranking — alpha4 (local site) over gridhit0
/// (fast WAN) over lz02 (30 Mbps bottleneck) — through the exact same
/// audit record a plain `fetch` would write.
#[test]
fn static_single_client_reproduces_paper_ranking() {
    let mut builder = paper_testbed(555);
    builder.selection_mode(SelectionMode::Static);
    let mut grid = builder.build();
    grid.catalog_mut()
        .register_logical("file-d".parse().unwrap(), 32 * MB)
        .unwrap();
    for host in ["alpha4", "hit0", "lz02"] {
        grid.place_replica("file-d", canonical_host(host)).unwrap();
    }
    grid.warm_up(SimDuration::from_secs(120));
    let jobs = [ReplayJob {
        at: grid.now(),
        client: grid.host_id("alpha1").unwrap(),
        lfn: "file-d".to_string(),
    }];
    let report = grid
        .replay_concurrent(&jobs, FetchOptions::default(), &RecoveryOptions::default())
        .unwrap();
    assert_eq!(report.completed(), 1);
    match &report.outcomes[0].status {
        ReplayStatus::Completed { winner, bytes, .. } => {
            assert_eq!(winner, "alpha4");
            assert_eq!(*bytes, 32 * MB);
        }
        other => panic!("expected completion, got {other:?}"),
    }
    let decision = grid.audit().last().expect("replay records its decision");
    assert_eq!(decision.lfn, "file-d");
    assert_eq!(decision.client, "alpha1");
    let mut ranked: Vec<(usize, &str)> = decision
        .candidates
        .iter()
        .map(|c| (c.rank, c.host.as_str()))
        .collect();
    ranked.sort_unstable();
    let hosts_by_rank: Vec<&str> = ranked.into_iter().map(|(_, h)| h).collect();
    assert_eq!(
        hosts_by_rank,
        ["alpha4", "gridhit0", "lz02"],
        "paper Table 1 ranking must survive the replay path"
    );
    // The replay measured the transfer back into the audit record.
    assert!(decision
        .candidates
        .iter()
        .any(|c| c.measured_secs.is_some()));
}

/// Failover under load: a HIT-uplink blackout mid-replay makes the
/// clients fetching from gridhit0 mark it suspect and fall over to the
/// next-best replica, while clients on an unaffected file keep their
/// first choice and record no failover.
#[test]
fn link_blackout_fails_over_affected_clients_only() {
    let (builder, sites) = paper_testbed_with(777, &Calibration::default());
    let mut grid = builder.build();
    grid.catalog_mut()
        .register_logical("file-hit".parse().unwrap(), 256 * MB)
        .unwrap();
    let hit_pfn = grid.place_replica("file-hit", "gridhit0").unwrap();
    grid.place_replica("file-hit", "lz02").unwrap();
    grid.catalog_mut()
        .register_logical("file-thu".parse().unwrap(), 32 * MB)
        .unwrap();
    grid.place_replica("file-thu", "alpha4").unwrap();
    grid.warm_up(SimDuration::from_secs(120));

    let job = |name: &str, lfn: &str| ReplayJob {
        at: grid.now(),
        client: grid.host_id(name).unwrap(),
        lfn: lfn.to_string(),
    };
    let jobs = [
        job("alpha1", "file-hit"),
        job("alpha2", "file-hit"),
        job("alpha3", "file-thu"),
    ];
    // Black out the HIT uplink (both directions) once the transfers are
    // in flight, for longer than any retry budget.
    let mut plan = FaultPlan::new();
    for link in [sites.hit_uplink.0, sites.hit_uplink.1] {
        plan = plan.link_down(
            grid.now() + SimDuration::from_secs(2),
            SimDuration::from_secs(10_000),
            link,
        );
    }
    grid.install_fault_plan(plan);
    let recovery = RecoveryOptions::default()
        .with_retry(
            RetryPolicy::default()
                .with_max_attempts(2)
                .with_base_backoff(SimDuration::from_secs(1)),
        )
        .with_stall_timeout(SimDuration::from_secs(1));
    let report = grid
        .replay_concurrent(&jobs, FetchOptions::default(), &recovery)
        .unwrap();
    assert_eq!(report.completed(), 3, "every client finishes via failover");

    for outcome in &report.outcomes {
        match (outcome.lfn.as_str(), &outcome.status) {
            ("file-hit", ReplayStatus::Completed { winner, bytes, .. }) => {
                assert_eq!(winner, "lz02", "affected clients fall over to next-best");
                assert_eq!(bytes, &(256 * MB));
                assert!(outcome.failovers >= 1, "failover must be recorded");
            }
            ("file-thu", ReplayStatus::Completed { winner, .. }) => {
                assert_eq!(winner, "alpha4", "unaffected client keeps first choice");
                assert_eq!(outcome.failovers, 0, "no failover for unaffected client");
            }
            (lfn, status) => panic!("unexpected outcome for {lfn}: {status:?}"),
        }
    }

    // The abandoned replica is marked suspect in the catalog...
    assert!(grid.catalog().is_suspect(&hit_pfn));
    // ...and the audit trail scopes the failover decisions to the
    // affected file only.
    let failover_lfns: Vec<&str> = grid
        .audit()
        .decisions()
        .iter()
        .filter(|d| d.policy.contains("failover"))
        .map(|d| d.lfn.as_str())
        .collect();
    assert!(
        !failover_lfns.is_empty(),
        "audit must record failover re-decisions"
    );
    assert!(
        failover_lfns.iter().all(|lfn| *lfn == "file-hit"),
        "failover decisions must be scoped to the faulted file, got {failover_lfns:?}"
    );
    let hit_decisions = grid
        .audit()
        .decisions()
        .iter()
        .filter(|d| d.lfn == "file-hit" && d.policy.contains("failover"))
        .count();
    assert!(hit_decisions >= 2, "both affected clients re-decide");
}

/// The hot-path regression the cohort batching exists to fix: in a
/// background-churn workload (many concurrent clients over one grid,
/// all-pairs monitor probes landing on shared ticks), the per-event
/// engine runs one solver pass per flow mutation, so solver passes track
/// arrivals one-for-one. The batched engine must (a) actually batch —
/// `EngineStats::solves_avoided` strictly positive — and (b) finish the
/// same workload with strictly fewer solver passes, while every public
/// number stays identical.
#[test]
fn background_churn_batches_per_arrival_solves() {
    use datagrid::testbed::gridscale::{run_grid_scale_cell, GridScaleConfig};

    let cfg = GridScaleConfig {
        files: 12,
        warm: SimDuration::from_secs(30),
        // Tight arrivals: clients land while earlier transfers (and the
        // monitor's probe flows) are still churning the same components.
        mean_inter_arrival: SimDuration::from_millis(250),
        ..GridScaleConfig::default()
    };
    let batched = run_grid_scale_cell(99, 48, &cfg);
    let per_event = run_grid_scale_cell(
        99,
        48,
        &GridScaleConfig {
            batching: false,
            ..cfg
        },
    );

    // The toggle must be publicly unobservable...
    assert_eq!(batched.cell.completed, per_event.cell.completed);
    assert_eq!(batched.cell.failed, per_event.cell.failed);
    assert_eq!(batched.cell.makespan_s, per_event.cell.makespan_s);
    assert_eq!(batched.cell.p99_s, per_event.cell.p99_s);
    assert_eq!(&batched.obs.events_jsonl, &per_event.obs.events_jsonl);

    // ...while the solver bookkeeping shows the batching did real work.
    assert_eq!(per_event.cell.solves_avoided, 0);
    assert_eq!(per_event.cell.batched_solves, 0);
    assert!(
        batched.cell.solves_avoided > 0,
        "churn workload produced no same-instant cohorts to batch"
    );
    let solves =
        |c: &datagrid::testbed::gridscale::GridScaleCell| c.incremental_solves + c.full_solves;
    assert!(
        solves(&batched.cell) < solves(&per_event.cell),
        "batching must strictly reduce solver passes: {} vs {}",
        solves(&batched.cell),
        solves(&per_event.cell)
    );
    assert_eq!(
        solves(&per_event.cell) - solves(&batched.cell),
        batched.cell.solves_avoided,
        "every avoided solve must be accounted for"
    );
}
