//! Closing the loop between the abstract replay model and the real
//! driver: every small-grid replay configuration (clients × replicas,
//! with and without a mid-transfer blackout) must land every job in a
//! terminal state the exhaustive model search declares reachable, with
//! the observability layer's metrics, events and audit entries exactly
//! consistent with the outcomes.

use datagrid::core::grid::modelcheck::{explore, FetchModel, ModelPhase};
use datagrid::prelude::*;

const MB: u64 = 1 << 20;

/// Table 1 replica hosts, best-ranked first for an alpha-site client.
const REPLICA_HOSTS: [&str; 3] = ["alpha4", "gridhit0", "lz02"];
/// Client hosts, disjoint from every replica host (no local hits).
const CLIENT_HOSTS: [&str; 3] = ["alpha1", "alpha2", "alpha3"];

/// A tight recovery ladder so faulted cells abandon dead replicas fast.
fn quick_recovery() -> RecoveryOptions {
    RecoveryOptions::default()
        .with_retry(
            RetryPolicy::default()
                .with_max_attempts(2)
                .with_base_backoff(SimDuration::from_secs(2)),
        )
        .with_stall_timeout(SimDuration::from_secs(2))
}

struct Cell {
    clients: usize,
    replicas: usize,
    blackout_top: bool,
}

/// Replays one configuration cell and checks every invariant.
fn check_cell(cell: &Cell, seed: u64) {
    let recovery = quick_recovery();
    // The abstract model for this cell explores clean before the
    // concrete run is even attempted.
    let model = FetchModel {
        replicas: cell.replicas as u32,
        local_hit: false,
        max_attempts: recovery.retry.max_attempts,
        max_failovers: recovery.max_failovers,
    };
    let exploration = explore(&model)
        .unwrap_or_else(|v| panic!("model falsified for {} replicas: {v}", cell.replicas));

    // Faulted cells use a file big enough (≥2 s on the 1 Gbps LAN) that
    // the +1 s blackout always lands mid-transfer.
    let size = if cell.blackout_top { 256 * MB } else { 96 * MB };
    let mut grid = paper_testbed(seed).build();
    grid.catalog_mut()
        .register_logical("file-a".parse().unwrap(), size)
        .unwrap();
    for host in &REPLICA_HOSTS[..cell.replicas] {
        grid.place_replica("file-a", host).unwrap();
    }
    grid.warm_up(SimDuration::from_secs(300));
    if cell.blackout_top {
        let client = grid.host_id(CLIENT_HOSTS[0]).unwrap();
        let top = grid.score_candidates(client, "file-a").unwrap()[0].clone();
        grid.install_fault_plan(FaultPlan::new().host_blackout(
            grid.now() + SimDuration::from_secs(1),
            SimDuration::from_secs(3600),
            grid.node_of(top.host),
        ));
    }
    let jobs: Vec<ReplayJob> = (0..cell.clients)
        .map(|i| ReplayJob {
            at: grid.now() + SimDuration::from_millis(50 * i as u64),
            client: grid.host_id(CLIENT_HOSTS[i]).unwrap(),
            lfn: "file-a".to_string(),
        })
        .collect();
    let report = grid
        .replay_concurrent(&jobs, FetchOptions::default(), &recovery)
        .expect("replay configuration is valid");

    // 1. Terminal coverage: one outcome per job, each bytes-complete or
    //    Failed, each admitted by the exhaustive model.
    assert_eq!(report.outcomes.len(), cell.clients);
    let mut failovers_total = 0u64;
    let mut audit_expected = 0u64;
    for outcome in &report.outcomes {
        failovers_total += u64::from(outcome.failovers);
        match &outcome.status {
            ReplayStatus::Completed { bytes, .. } => {
                assert_eq!(*bytes, size, "{}: short delivery", outcome.client);
                assert!(
                    exploration.admits_outcome(ModelPhase::Completed, outcome.failovers),
                    "{}: Completed after {} failovers is model-unreachable",
                    outcome.client,
                    outcome.failovers
                );
                // Initial decision + one re-decision per failover.
                audit_expected += 1 + u64::from(outcome.failovers);
            }
            ReplayStatus::Failed { failed } => {
                assert_eq!(failed.len() as u32, outcome.failovers);
                assert!(
                    exploration.admits_outcome(ModelPhase::Failed, outcome.failovers),
                    "{}: Failed after {} failovers is model-unreachable",
                    outcome.client,
                    outcome.failovers
                );
                // The last abandon fails the job without re-deciding (or
                // the final re-decision finds no candidate and records
                // nothing), so exactly `failovers` decisions were logged.
                audit_expected += u64::from(outcome.failovers);
            }
        }
        assert!(outcome.attempts >= 1);
        assert!(outcome.finished >= outcome.submitted);
    }

    // 2. No stuck client leaves traffic behind (background flows run
    //    forever by design and a monitoring probe may be mid-flight), and
    //    the settled state still carries a max-min certificate.
    assert_eq!(grid.network().flow_count_by_tag(FlowTag::User), 0);
    grid.network()
        .verify_allocation()
        .expect("post-replay allocation certifies");

    // 3. Metrics mirror the outcomes exactly.
    let m = grid.metrics_snapshot();
    assert_eq!(m.counter("replay.jobs"), cell.clients as u64);
    assert_eq!(m.counter("replay.completed"), report.completed() as u64);
    assert_eq!(m.counter("replay.failed"), report.failed() as u64);
    assert_eq!(m.counter("selection.failovers"), failovers_total);
    assert_eq!(m.counter("transfer.abandoned"), failovers_total);

    // 4. Event counts match the metrics (nothing dropped, nothing
    //    double-counted).
    assert_eq!(m.counter("obs.events_dropped"), 0);
    let count = |kind: &str| grid.recorder().events().filter(|e| e.kind == kind).count() as u64;
    assert_eq!(count("replay.start"), 1);
    assert_eq!(count("replay.end"), 1);
    assert_eq!(count("replay.job.done"), report.completed() as u64);
    assert_eq!(count("replay.job.failed"), report.failed() as u64);
    assert_eq!(count("selection.failover"), failovers_total);
    assert_eq!(count("transfer.abandoned"), failovers_total);

    // 5. Audit-log consistency: every decision that chose a candidate is
    //    recorded, and nothing else is.
    assert_eq!(grid.audit().len() as u64, audit_expected);

    // 6. Faulted cells with a fallback replica must actually exercise
    //    failover; fault-free cells must never.
    if cell.blackout_top && cell.replicas > 1 {
        assert!(
            failovers_total >= 1,
            "blackout of the top replica must force at least one failover"
        );
        assert_eq!(report.failed(), 0, "surviving replicas serve every job");
    }
    if !cell.blackout_top {
        assert_eq!(failovers_total, 0);
        assert_eq!(report.failed(), 0);
    }
}

/// The full sweep: ≤3 clients × ≤3 replicas, fault-free.
#[test]
fn replay_matches_model_without_faults() {
    for clients in 1..=3 {
        for replicas in 1..=3 {
            check_cell(
                &Cell {
                    clients,
                    replicas,
                    blackout_top: false,
                },
                9000 + (clients * 10 + replicas) as u64,
            );
        }
    }
}

/// The same sweep with the top-ranked replica blacking out mid-replay.
#[test]
fn replay_matches_model_under_blackout() {
    for clients in 1..=3 {
        for replicas in 2..=3 {
            check_cell(
                &Cell {
                    clients,
                    replicas,
                    blackout_top: true,
                },
                7000 + (clients * 10 + replicas) as u64,
            );
        }
    }
}

/// Single replica + blackout: every job must exhaust the candidate list
/// and Fail — the model's only admitted failure route for this policy.
#[test]
fn replay_single_replica_blackout_fails_cleanly() {
    check_cell(
        &Cell {
            clients: 2,
            replicas: 1,
            blackout_top: true,
        },
        4242,
    );
}
