//! Integration tests of the monitoring stack (NWS + MDS + sysstat) as the
//! selection server consumes it.

use datagrid::prelude::*;
use datagrid::sysmon::sysstat;

#[test]
fn sensors_warm_up_and_track_path_rates() {
    let mut grid = paper_testbed(101).build();
    grid.warm_up(SimDuration::from_secs(300));
    let alpha1 = grid.host_id("alpha1").unwrap();

    // LAN neighbour: near the full 1 Gbps reference.
    let alpha4 = grid.host_id("alpha4").unwrap();
    let lan = grid
        .nws()
        .sensor(grid.node_of(alpha4), grid.node_of(alpha1))
        .unwrap();
    let lan_forecast = lan.forecast().unwrap().as_mbps();
    assert!(lan_forecast > 700.0, "LAN forecast {lan_forecast} Mbps");

    // HIT path: Mathis-limited around 36 Mbps.
    let hit0 = grid.host_id("gridhit0").unwrap();
    let wan = grid
        .nws()
        .sensor(grid.node_of(hit0), grid.node_of(alpha1))
        .unwrap();
    let wan_forecast = wan.forecast().unwrap().as_mbps();
    assert!(
        (20.0..60.0).contains(&wan_forecast),
        "THU<-HIT forecast {wan_forecast} Mbps"
    );

    // Li-Zen path: heavily loss-limited, single-digit Mbps.
    let lz02 = grid.host_id("lz02").unwrap();
    let lz = grid
        .nws()
        .sensor(grid.node_of(lz02), grid.node_of(alpha1))
        .unwrap();
    let lz_forecast = lz.forecast().unwrap().as_mbps();
    assert!(
        (1.0..10.0).contains(&lz_forecast),
        "THU<-LZ forecast {lz_forecast} Mbps"
    );

    // Fractions ordered accordingly.
    let f_lan = grid.bandwidth_fraction(alpha4, alpha1).unwrap();
    let f_wan = grid.bandwidth_fraction(hit0, alpha1).unwrap();
    let f_lz = grid.bandwidth_fraction(lz02, alpha1).unwrap();
    assert!(f_lan > f_wan && f_wan > f_lz, "{f_lan} > {f_wan} > {f_lz}");
}

#[test]
fn battery_scores_are_populated_after_warmup() {
    let mut grid = paper_testbed(102).build();
    grid.warm_up(SimDuration::from_secs(600));
    let alpha1 = grid.host_id("alpha1").unwrap();
    let lz02 = grid.host_id("lz02").unwrap();
    let sensor = grid
        .nws()
        .sensor(grid.node_of(lz02), grid.node_of(alpha1))
        .unwrap();
    assert!(
        sensor.series().len() >= 50,
        "samples {}",
        sensor.series().len()
    );
    assert!(sensor.battery().selected().is_some());
    let scored: Vec<_> = sensor
        .battery()
        .scores()
        .iter()
        .filter(|s| s.predictions > 0)
        .collect();
    assert!(scored.len() >= 10, "most members scored: {}", scored.len());
    // Every member's MAE is finite and non-negative.
    for s in &scored {
        assert!(s.mae().is_finite() && s.mae() >= 0.0);
        assert!(s.mse() >= 0.0);
    }
}

#[test]
fn mds_reflects_load_processes() {
    let mut grid = paper_testbed(103).build();
    grid.warm_up(SimDuration::from_secs(120));
    for name in ["alpha1", "lz01", "gridhit0"] {
        let rec = grid.mds().lookup(name).unwrap();
        assert!((0.0..=1.0).contains(&rec.cpu_idle), "{name}: {rec:?}");
        assert!((0.0..=1.0).contains(&rec.io_idle));
        assert!(rec.updated > SimTime::ZERO, "{name} never refreshed");
    }
    // Li-Zen machines run hotter on average than HIT (per site models):
    // compare across the four machines of each site to smooth noise.
    let avg = |names: [&str; 4]| {
        names
            .iter()
            .map(|n| grid.mds().lookup(n).unwrap().cpu_idle)
            .sum::<f64>()
            / 4.0
    };
    let lz_idle = avg(["lz01", "lz02", "lz03", "lz04"]);
    let hit_idle = avg(["gridhit0", "gridhit1", "gridhit2", "gridhit3"]);
    assert!(
        lz_idle < hit_idle + 0.25,
        "lz {lz_idle} should generally be busier than hit {hit_idle}"
    );
}

#[test]
fn sysstat_reports_render_for_all_hosts() {
    let mut grid = paper_testbed(104).build();
    grid.warm_up(SimDuration::from_secs(120));
    for id in grid.host_ids().collect::<Vec<_>>() {
        let host = grid.host(id);
        let sar = sysstat::sar_report(host);
        assert!(sar.contains(host.name()));
        assert!(sar.contains("%idle"));
        assert!(
            sar.lines().count() > 3,
            "history rendered for {}",
            host.name()
        );
        let io = sysstat::iostat_report(host);
        assert!(io.contains("%util"));
    }
}

#[test]
fn host_histories_accumulate_bounded_samples() {
    let mut grid = paper_testbed(105).build();
    grid.warm_up(SimDuration::from_secs(600));
    let id = grid.host_id("alpha3").unwrap();
    let history = grid.host(id).history();
    // 10 s interval over 600 s => ~60 samples.
    assert!(
        (55..=61).contains(&history.len()),
        "samples {}",
        history.len()
    );
    assert!(history.windows(2).all(|w| w[0].time < w[1].time));
}

#[test]
fn probes_do_not_pile_up_on_slow_paths() {
    // After a long warm-up the number of in-flight probes stays bounded by
    // the number of monitored pairs.
    let mut grid = paper_testbed(106).build();
    grid.warm_up(SimDuration::from_secs(1200));
    let active = grid.network().active_flow_count();
    // 22 monitored pairs + some background flows; generous bound.
    assert!(active < 80, "active flows {active}");
}
