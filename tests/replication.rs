//! Integration test: dynamic replication advice closing the loop with the
//! replica manager on the paper testbed.

use datagrid::core::replication::{ReplicationManager, ReplicationStrategy};
use datagrid::prelude::*;

const MB: u64 = 1 << 20;

#[test]
fn count_based_replication_makes_later_fetches_local() {
    let mut grid = paper_testbed(200).build();
    grid.catalog_mut()
        .register_logical("hot".parse().unwrap(), 32 * MB)
        .unwrap();
    grid.place_replica("hot", "alpha4").unwrap();
    grid.warm_up(SimDuration::from_secs(120));

    let client = grid.host_id("gridhit2").unwrap();
    let mut mgr = ReplicationManager::new(ReplicationStrategy::FetchCount { threshold: 2 });

    let mut remote_durations = Vec::new();
    let mut replicated = false;
    for round in 0..4 {
        let report = grid.fetch(client, "hot").unwrap();
        if report.local_hit {
            assert!(replicated, "local hit requires a prior replication");
            assert!(round >= 2, "replication needs two remote fetches first");
            // Local reads beat the remote WAN fetch.
            let local = report.transfer.duration().as_secs_f64();
            assert!(
                local < remote_durations[0] * 0.9,
                "local {local} should beat remote {:?}",
                remote_durations
            );
            return;
        }
        remote_durations.push(report.transfer.duration().as_secs_f64());
        if let Some(advice) = mgr.observe(&report) {
            assert_eq!(advice.to_host, "gridhit2");
            grid.replicate(&advice.lfn, &advice.to_host, 4).unwrap();
            replicated = true;
        }
    }
    panic!("replication never produced a local hit");
}

#[test]
fn slow_fetch_strategy_targets_only_slow_paths() {
    let mut grid = paper_testbed(201).build();
    for (lfn, host) in [("near", "alpha4"), ("far", "lz02")] {
        grid.catalog_mut()
            .register_logical(lfn.parse().unwrap(), 16 * MB)
            .unwrap();
        grid.place_replica(lfn, host).unwrap();
    }
    grid.warm_up(SimDuration::from_secs(120));
    let client = grid.host_id("alpha1").unwrap();
    let mut mgr = ReplicationManager::new(ReplicationStrategy::SlowFetch { threshold_s: 10.0 });

    let near = grid.fetch(client, "near").unwrap();
    assert_eq!(mgr.observe(&near), None, "LAN fetch is fast enough");

    let far = grid.fetch(client, "far").unwrap();
    let advice = mgr
        .observe(&far)
        .expect("a 16 MiB pull over the lossy 30 Mbps path is slow");
    assert_eq!(advice.lfn, "far");
    assert_eq!(advice.to_host, "alpha1");
}
