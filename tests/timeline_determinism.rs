//! Satellite lock-down: continuous telemetry is a pure function of the
//! seed. Same seed must reproduce the health-timeline JSON, the rendered
//! health report and the `BENCH_profile.json` body byte-for-byte (in
//! default builds — `prof-timing` adds wall-clock fields that are
//! excluded by construction); different seeds must actually change the
//! recorded timeline.

use datagrid::obs::prof::TIMING_ENABLED;
use datagrid::prelude::*;
use proptest::prelude::*;

fn quick_cfg(files: usize) -> ProfileConfig {
    ProfileConfig {
        grid: GridScaleConfig {
            files,
            warm: SimDuration::from_secs(30),
            ..GridScaleConfig::default()
        },
        window: SimDuration::from_secs(15),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Two profile sweeps from the same seed emit byte-identical timeline
    /// JSON, health reports and report bodies for every cell.
    #[test]
    fn same_seed_byte_identical_timeline_and_profile(
        seed in 0u64..1_000_000,
        clients in 2usize..6,
        files in 4usize..10,
    ) {
        let cfg = quick_cfg(files);
        let counts = [clients, clients + 2];
        let a = run_profile(seed, &counts, &cfg);
        let b = run_profile(seed, &counts, &cfg);
        prop_assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            prop_assert_eq!(&ra.timeline_json, &rb.timeline_json);
            prop_assert_eq!(&ra.health_report, &rb.health_report);
            // Phase counts are deterministic even in prof-timing builds.
            prop_assert_eq!(&ra.cell, &rb.cell);
            // The timeline is a real record, not an empty shell.
            prop_assert!(ra.cell.windows > 0);
            prop_assert!(ra.timeline_json.contains("\"hottest_links\""));
        }
        if !TIMING_ENABLED {
            let ja = ProfileReport::from_runs(seed, &cfg, &a).render_json();
            let jb = ProfileReport::from_runs(seed, &cfg, &b).render_json();
            prop_assert_eq!(ja, jb);
        }
    }

    /// Different seeds produce genuinely different timelines and reports.
    #[test]
    fn different_seeds_different_timelines(
        seed in 0u64..1_000_000,
        clients in 3usize..8,
    ) {
        let cfg = quick_cfg(6);
        let other = seed ^ 0xdead_beef;
        let a = run_profile(seed, &[clients], &cfg);
        let b = run_profile(other, &[clients], &cfg);
        prop_assert_ne!(
            &a[0].timeline_json, &b[0].timeline_json,
            "timelines must diverge across seeds"
        );
        if !TIMING_ENABLED {
            let ja = ProfileReport::from_runs(seed, &cfg, &a).render_json();
            let jb = ProfileReport::from_runs(other, &cfg, &b).render_json();
            prop_assert_ne!(ja, jb, "reports must diverge across seeds");
        }
    }
}
