//! Fault injection and recovery, end to end: injected link/host faults
//! interrupt real transfers, and the client survives them through the
//! recovery ladder — stall watchdog, backoff retries with MODE E restart
//! markers, suspect marking and next-best-replica failover.

use datagrid::gridftp::transfer::TransferRequest;
use datagrid::prelude::*;

const MB: u64 = 1 << 20;

/// The paper testbed with `file-a` replicated at the Table 1 sites and
/// monitoring warmed long enough for the canonical ranking to settle.
fn fault_grid(seed: u64, file_mb: u64) -> DataGrid {
    let mut grid = paper_testbed(seed).build();
    grid.catalog_mut()
        .register_logical("file-a".parse().unwrap(), file_mb * MB)
        .unwrap();
    for host in ["alpha4", "hit0", "lz02"] {
        grid.place_replica("file-a", canonical_host(host)).unwrap();
    }
    grid.warm_up(SimDuration::from_secs(300));
    grid
}

/// A tight recovery ladder so tests abandon dead replicas quickly.
fn quick_recovery() -> RecoveryOptions {
    RecoveryOptions::default()
        .with_retry(
            RetryPolicy::default()
                .with_max_attempts(2)
                .with_base_backoff(SimDuration::from_secs(2)),
        )
        .with_stall_timeout(SimDuration::from_secs(2))
}

/// The ISSUE acceptance scenario: the top-ranked replica blacks out
/// mid-transfer and the fetch still completes via the next-ranked
/// candidate, with the whole episode visible in the observability layer.
#[test]
fn blackout_of_top_replica_fails_over_mid_transfer() {
    let mut grid = fault_grid(20050905, 1024);
    let client = grid.host_id("alpha1").unwrap();
    let top = grid.score_candidates(client, "file-a").unwrap()[0].clone();
    assert_eq!(top.host_name, "alpha4", "canonical Table 1 winner");

    grid.install_fault_plan(FaultPlan::new().host_blackout(
        grid.now() + SimDuration::from_secs(4),
        SimDuration::from_secs(3600),
        grid.node_of(top.host),
    ));
    let rec = grid
        .fetch_with_recovery(
            client,
            "file-a",
            FetchOptions::default().with_parallelism(4),
            &quick_recovery(),
        )
        .expect("the fetch survives the blackout via failover");

    // The failover path: alpha4 abandoned, gridhit0 delivers the file.
    assert_eq!(rec.failed_over, vec!["alpha4".to_string()]);
    assert_eq!(rec.report.chosen_candidate().host_name, "gridhit0");
    assert_eq!(rec.report.transfer.payload_bytes, 1024 * MB);
    assert!(rec.attempts >= 3, "2 on alpha4 + 1 on gridhit0");
    assert!(
        rec.payload_moved > 1024 * MB,
        "bytes delivered before the blackout were lost: moved {}",
        rec.payload_moved
    );
    assert!(!rec.backoff_total.is_zero(), "a retry implies backoff");
    assert!(grid.catalog().is_suspect(&top.location));

    // The episode is fully reconstructable from the observability layer.
    let m = grid.metrics_snapshot();
    assert!(m.counter("transfer.stalls") >= 1);
    assert!(m.counter("transfer.retries") >= 1);
    assert_eq!(m.counter("transfer.abandoned"), 1);
    assert_eq!(m.counter("selection.failovers"), 1);
    assert_eq!(m.counter("fault.host_blackout"), 1);
    let kinds: Vec<&str> = grid.recorder().events().map(|e| e.kind).collect();
    for kind in [
        "fault.start",
        "transfer.stall",
        "transfer.retry",
        "transfer.abandoned",
        "selection.failover",
    ] {
        assert!(kinds.contains(&kind), "missing event {kind}: {kinds:?}");
    }
    let decision = grid.audit().last().expect("failover was audited");
    assert_eq!(decision.policy, "failover");
    assert_eq!(decision.winner, "gridhit0");
}

/// The restart-marker acceptance property at grid level: a transient
/// outage costs a MODE E transfer nothing but time, while a stream-mode
/// transfer re-sends everything it had already delivered.
#[test]
fn resumed_transfers_move_fewer_bytes_than_restart_from_zero() {
    let outage = |req: TransferRequest| {
        let mut grid = fault_grid(777, 256);
        let src = grid.host_id("alpha4").unwrap();
        let dst = grid.host_id("alpha1").unwrap();
        grid.install_fault_plan(FaultPlan::new().host_blackout(
            grid.now() + SimDuration::from_secs(1),
            SimDuration::from_secs(2),
            grid.node_of(src),
        ));
        let recovery = RecoveryOptions::default()
            .with_retry(RetryPolicy::default().with_base_backoff(SimDuration::from_secs(1)))
            .with_stall_timeout(SimDuration::from_secs(1));
        grid.transfer_between_with_recovery(src, dst, req, &recovery)
            .expect("the outage is transient")
    };

    let mode_e = outage(TransferRequest::new(256 * MB).with_parallelism(4));
    let stream = outage(TransferRequest::new(256 * MB));

    assert!(mode_e.attempts >= 2, "the fault interrupted the transfer");
    assert!(stream.attempts >= 2, "the fault interrupted the transfer");
    // The final MODE E session only carried the tail beyond the last
    // restart marker; the stream-mode restart re-sent the whole file.
    let resumed_at = *mode_e.resumed_from.last().unwrap();
    assert_eq!(resumed_at + mode_e.outcome.payload_bytes, 256 * MB);
    assert_eq!(stream.outcome.payload_bytes, 256 * MB);
    // MODE E resumed from the last committed byte, so the wire moved the
    // payload exactly once; stream mode re-sent the pre-fault bytes.
    assert_eq!(mode_e.payload_moved, 256 * MB);
    assert!(
        mode_e.payload_moved < stream.payload_moved,
        "resume {} vs restart {}",
        mode_e.payload_moved,
        stream.payload_moved
    );
    assert!(mode_e.resumed_from.iter().any(|&o| o > 0));
    assert!(stream.resumed_from.iter().all(|&o| o == 0));
}

/// When every replica is dark the fetch reports the full casualty list
/// instead of spinning forever.
#[test]
fn all_replicas_dark_is_reported_with_the_casualty_list() {
    let mut grid = fault_grid(20050905, 256);
    let client = grid.host_id("alpha1").unwrap();
    let at = grid.now() + SimDuration::from_secs(1);
    let mut plan = FaultPlan::new();
    for host in ["alpha4", "gridhit0", "lz02"] {
        let id = grid.host_id(host).unwrap();
        plan = plan.host_blackout(at, SimDuration::from_secs(100_000), grid.node_of(id));
    }
    grid.install_fault_plan(plan);

    let err = grid
        .fetch_with_recovery(
            client,
            "file-a",
            FetchOptions::default().with_parallelism(4),
            &quick_recovery(),
        )
        .expect_err("no replica can deliver");
    match err {
        GridError::AllReplicasFailed { lfn, failed } => {
            assert_eq!(lfn, "file-a");
            assert_eq!(failed.len(), 3, "every site was tried: {failed:?}");
        }
        other => panic!("unexpected error {other:?}"),
    }
}
