//! Integration tests asserting the *shape* of every paper experiment, on
//! scaled-down file sizes so the suite stays fast.

use datagrid::gridftp::transfer::{Protocol, TransferRequest};
use datagrid::prelude::*;

const MB: u64 = 1 << 20;

fn warmed(seed: u64) -> DataGrid {
    let mut grid = paper_testbed(seed).build();
    grid.warm_up(SimDuration::from_secs(60));
    grid
}

/// Fig. 3: FTP and GridFTP track each other; GridFTP pays a constant
/// authentication overhead.
#[test]
fn fig3_shape_ftp_vs_gridftp() {
    let run = |size: u64, protocol: Protocol| {
        let mut grid = warmed(31);
        let src = grid.host_id(canonical_host("alpha01")).unwrap();
        let dst = grid.host_id(canonical_host("gridhit3")).unwrap();
        grid.transfer_between(src, dst, TransferRequest::new(size).with_protocol(protocol))
            .unwrap()
            .duration()
            .as_secs_f64()
    };
    let small_gap = run(32 * MB, Protocol::GridFtp) - run(32 * MB, Protocol::Ftp);
    let large_gap = run(256 * MB, Protocol::GridFtp) - run(256 * MB, Protocol::Ftp);
    assert!(small_gap > 0.0, "GridFTP pays GSI: gap {small_gap}");
    assert!(small_gap < 2.0, "but the overhead is constant: {small_gap}");
    assert!(
        (small_gap - large_gap).abs() < 0.5,
        "overhead must not scale with size: {small_gap} vs {large_gap}"
    );
    // Relative overhead shrinks with size.
    let small_rel = small_gap / run(32 * MB, Protocol::Ftp);
    let large_rel = large_gap / run(256 * MB, Protocol::Ftp);
    assert!(large_rel < small_rel);
}

/// Fig. 4: parallel streams aggregate bandwidth on the lossy 30 Mbps
/// path, with diminishing returns.
#[test]
fn fig4_shape_parallel_streams() {
    let run = |streams: u32| {
        let mut grid = warmed(41);
        let src = grid.host_id(canonical_host("alpha02")).unwrap();
        let dst = grid.host_id(canonical_host("lz04")).unwrap();
        let mut req = TransferRequest::new(64 * MB);
        if streams > 0 {
            req = req.with_parallelism(streams);
        }
        grid.transfer_between(src, dst, req)
            .unwrap()
            .duration()
            .as_secs_f64()
    };
    let none = run(0);
    let s1 = run(1);
    let s2 = run(2);
    let s4 = run(4);
    let s8 = run(8);
    let s16 = run(16);
    // One MODE E stream ≈ stream mode (slightly slower: framing).
    assert!((s1 - none).abs() / none < 0.02, "none {none} vs 1 {s1}");
    assert!(s1 >= none);
    // Monotone improvement with diminishing returns.
    assert!(s2 < s1 * 0.65, "2 streams {s2} vs {s1}");
    assert!(s4 < s2 * 0.75, "4 streams {s4} vs {s2}");
    assert!(s8 <= s4, "8 streams {s8} vs {s4}");
    assert!(s16 <= s8 * 1.05, "16 streams {s16} vs {s8}");
    let gain_1_2 = s1 / s2;
    let gain_8_16 = s8 / s16;
    assert!(gain_1_2 > gain_8_16, "returns must diminish");
}

/// Table 1: the cost-model ranking equals the measured-time ranking.
#[test]
fn table1_shape_ranking_agreement() {
    let mut grid = paper_testbed(51).build();
    grid.catalog_mut()
        .register_logical("file-a".parse().unwrap(), 32 * MB)
        .unwrap();
    for host in ["alpha4", "hit0", "lz02"] {
        grid.place_replica("file-a", canonical_host(host)).unwrap();
    }
    grid.warm_up(SimDuration::from_secs(120));
    let client = grid.host_id("alpha1").unwrap();
    let candidates = grid.score_candidates(client, "file-a").unwrap();
    let mut measured: Vec<(String, f64)> = Vec::new();
    for c in &candidates {
        let mut probe = grid.clone();
        let secs = probe
            .fetch_from(client, "file-a", &c.host_name, FetchOptions::default())
            .unwrap()
            .transfer
            .duration()
            .as_secs_f64();
        measured.push((c.host_name.clone(), secs));
    }
    let mut by_time = measured.clone();
    by_time.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let score_order: Vec<&str> = candidates.iter().map(|c| c.host_name.as_str()).collect();
    let time_order: Vec<&str> = by_time.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(score_order, time_order);
}

/// Fig. 5: the cost history sorts sites best-first and averaging windows
/// work.
#[test]
fn fig5_shape_cost_history() {
    let mut grid = paper_testbed(61).build();
    grid.catalog_mut()
        .register_logical("file-a".parse().unwrap(), 32 * MB)
        .unwrap();
    for host in ["alpha4", "hit0", "lz02"] {
        grid.place_replica("file-a", canonical_host(host)).unwrap();
    }
    grid.warm_up(SimDuration::from_secs(120));
    let client = grid.host_id("alpha1").unwrap();
    let mut history = CostHistory::new();
    for _ in 0..12 {
        grid.warm_up(SimDuration::from_secs(10));
        for c in grid.score_candidates(client, "file-a").unwrap() {
            history.record(&c.host_name, grid.now(), c.score);
        }
    }
    let sorted = history.sorted(grid.now(), SimDuration::from_secs(300));
    assert_eq!(sorted.len(), 3);
    assert_eq!(sorted[0].0, "alpha4");
    assert_eq!(sorted[2].0, "lz02");
    assert!(sorted[0].1 > sorted[1].1 && sorted[1].1 > sorted[2].1);
    // Narrow and wide windows both produce values.
    for w in [10u64, 60, 300] {
        assert!(history
            .average("alpha4", grid.now(), SimDuration::from_secs(w))
            .is_some());
    }
}

/// Future work #1: striped transfers improve aggregate bandwidth.
#[test]
fn striped_transfers_beat_single_source() {
    let mut grid = warmed(71);
    let client = grid.host_id("alpha1").unwrap();
    let hit: Vec<_> = (0..2)
        .map(|i| grid.host_id(&format!("gridhit{i}")).unwrap())
        .collect();
    let req = TransferRequest::new(128 * MB).with_parallelism(2);
    let mut clone = grid.clone();
    let single = clone
        .striped_transfer_between(&hit[..1], client, req)
        .unwrap();
    let striped = grid.striped_transfer_between(&hit, client, req).unwrap();
    assert_eq!(striped.stripes, 2);
    assert!(
        striped.duration().as_secs_f64() < single.duration().as_secs_f64() * 0.7,
        "striped {} vs single {}",
        striped.duration(),
        single.duration()
    );
}

/// Partial transfer: only the requested range crosses the network.
#[test]
fn partial_transfers_move_less() {
    let mut grid = warmed(81);
    let src = grid.host_id("gridhit0").unwrap();
    let dst = grid.host_id("alpha1").unwrap();
    let full = grid
        .transfer_between(src, dst, TransferRequest::new(64 * MB))
        .unwrap();
    let partial = grid
        .transfer_between(
            src,
            dst,
            TransferRequest::new(64 * MB).with_range(MB, 8 * MB),
        )
        .unwrap();
    assert_eq!(partial.payload_bytes, 8 * MB);
    assert!(partial.duration() < full.duration());
}

/// Third-party transfer: the client pays control latency only; bytes flow
/// server-to-server.
#[test]
fn third_party_transfer_bypasses_the_client() {
    let mut grid = warmed(91);
    let client = grid.host_id("lz01").unwrap(); // behind the slow 30 Mbps uplink
    let src = grid.host_id("gridhit0").unwrap();
    let dst = grid.host_id("alpha4").unwrap();
    let outcome = grid
        .third_party_transfer(client, src, dst, TransferRequest::new(64 * MB))
        .unwrap();
    // 64 MiB at the ~36 Mbps HIT->THU rate ≈ 15 s. If the bytes had to
    // cross the client's 30 Mbps (lossy, ~4.7 Mbps effective) uplink twice,
    // this would take minutes.
    let secs = outcome.duration().as_secs_f64();
    assert!(secs < 40.0, "third-party copy took {secs}");
    // But the control overhead reflects the client's slow, distant link.
    assert!(outcome.control_overhead().as_millis_f64() > 300.0);
}

/// Control-connection caching: the second fetch from the same server skips
/// the GSI handshake; after the idle TTL the full handshake returns.
#[test]
fn control_connection_cache_skips_gsi_on_reuse() {
    let mut grid = warmed(95);
    let src = grid.host_id("gridhit0").unwrap();
    let dst = grid.host_id("alpha1").unwrap();
    let req = TransferRequest::new(8 * MB);
    let first = grid.transfer_between(src, dst, req).unwrap();
    let second = grid.transfer_between(src, dst, req).unwrap();
    let saved = first.control_overhead().as_secs_f64() - second.control_overhead().as_secs_f64();
    // GSI on this path costs ~0.2 s (4 RTTs of 12.4 ms + crypto).
    assert!(saved > 0.1, "cached session should skip GSI: saved {saved}");

    // A different destination is a different cache entry.
    let other = grid.host_id("alpha2").unwrap();
    let cold = grid.transfer_between(src, other, req).unwrap();
    assert!(
        cold.control_overhead() > second.control_overhead(),
        "other client must authenticate from scratch"
    );

    // After the 600 s idle TTL, the handshake is paid again.
    grid.warm_up(SimDuration::from_secs(700));
    let expired = grid.transfer_between(src, dst, req).unwrap();
    let regression =
        expired.control_overhead().as_secs_f64() - second.control_overhead().as_secs_f64();
    assert!(
        regression > 0.1,
        "expired cache must re-authenticate: {regression}"
    );
}

/// The parallelism suggestion recovers the Fig. 4 sweet spot per path.
#[test]
fn suggested_parallelism_matches_path_characteristics() {
    let grid = {
        let mut g = paper_testbed(97).build();
        g.warm_up(SimDuration::from_secs(30));
        g
    };
    let alpha1 = grid.host_id("alpha1").unwrap();
    let alpha4 = grid.host_id("alpha4").unwrap();
    let lz04 = grid.host_id("lz04").unwrap();
    let hit0 = grid.host_id("gridhit0").unwrap();
    // Loss-free gigabit LAN: one stream suffices.
    assert_eq!(grid.suggested_parallelism(alpha4, alpha1), 1);
    // Lossy 30 Mbps path with ~4.7 Mbps per stream: ~7 streams.
    let lz = grid.suggested_parallelism(lz04, alpha1);
    assert!((5..=9).contains(&lz), "lz suggestion {lz}");
    // Gigabit WAN with ~36 Mbps per stream: clamped at 16.
    assert_eq!(grid.suggested_parallelism(hit0, alpha1), 16);
}
