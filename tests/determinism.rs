//! Reproducibility guarantees: everything is a pure function of the seed.

use datagrid::prelude::*;

const MB: u64 = 1 << 20;

fn run_scenario(seed: u64) -> (String, f64, Vec<f64>) {
    let mut grid = paper_testbed(seed).build();
    grid.catalog_mut()
        .register_logical("file-d".parse().unwrap(), 32 * MB)
        .unwrap();
    for host in ["alpha4", "hit0", "lz02"] {
        grid.place_replica("file-d", canonical_host(host)).unwrap();
    }
    grid.warm_up(SimDuration::from_secs(120));
    let client = grid.host_id("alpha1").unwrap();
    let report = grid.fetch(client, "file-d").unwrap();
    (
        report.chosen_candidate().host_name.clone(),
        report.transfer.duration().as_secs_f64(),
        report.candidates.iter().map(|c| c.score).collect(),
    )
}

#[test]
fn same_seed_same_everything() {
    let a = run_scenario(555);
    let b = run_scenario(555);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1, "transfer durations must be bit-identical");
    assert_eq!(a.2, b.2, "scores must be bit-identical");
}

#[test]
fn different_seeds_differ_in_details_not_shape() {
    let a = run_scenario(556);
    let b = run_scenario(557);
    // The winner is robust across seeds...
    assert_eq!(a.0, "alpha4");
    assert_eq!(b.0, "alpha4");
    // ...but the monitored values are genuinely random.
    assert_ne!(a.2, b.2);
}

#[test]
fn clones_do_not_entangle() {
    let mut grid = paper_testbed(558).build();
    grid.catalog_mut()
        .register_logical("file-d".parse().unwrap(), 16 * MB)
        .unwrap();
    grid.place_replica("file-d", "alpha4").unwrap();
    grid.warm_up(SimDuration::from_secs(60));
    let before = grid.now();
    let client = grid.host_id("alpha1").unwrap();

    let mut clone = grid.clone();
    let _ = clone.fetch(client, "file-d").unwrap();
    // The original grid did not advance, and can still run its own fetch
    // with identical results to a second clone.
    assert_eq!(grid.now(), before);
    let mut c1 = grid.clone();
    let mut c2 = grid.clone();
    let r1 = c1.fetch(client, "file-d").unwrap();
    let r2 = c2.fetch(client, "file-d").unwrap();
    assert_eq!(
        r1.transfer.duration(),
        r2.transfer.duration(),
        "clones replay identically"
    );
}

#[test]
fn trace_replay_is_deterministic() {
    let run = |seed: u64| {
        let mut grid = paper_testbed(seed).build();
        grid.catalog_mut()
            .register_logical("file-t".parse().unwrap(), 16 * MB)
            .unwrap();
        grid.place_replica("file-t", "alpha4").unwrap();
        grid.place_replica("file-t", "lz02").unwrap();
        grid.warm_up(SimDuration::from_secs(120));
        let trace = RequestTrace::poisson(
            &["alpha1", "gridhit1"],
            &["file-t"],
            1.0 / 60.0,
            SimDuration::from_secs(600),
            99,
        );
        selection_quality(
            &mut grid,
            &trace,
            SelectionPolicy::CostModel,
            FetchOptions::default(),
        )
    };
    let a = run(600);
    let b = run(600);
    assert_eq!(a, b);
}

#[test]
fn observability_exports_are_byte_identical_across_runs() {
    let run = |seed: u64| {
        let mut grid = paper_testbed(seed).build();
        grid.catalog_mut()
            .register_logical("file-o".parse().unwrap(), 32 * MB)
            .unwrap();
        for host in ["alpha4", "hit0", "lz02"] {
            grid.place_replica("file-o", canonical_host(host)).unwrap();
        }
        grid.warm_up(SimDuration::from_secs(120));
        let client = grid.host_id("alpha1").unwrap();
        grid.fetch(client, "file-o").unwrap();
        let metrics = grid.metrics_snapshot();
        (
            metrics.render_text(),
            metrics.render_json(),
            grid.recorder().events_jsonl(),
            grid.audit().render_jsonl(),
        )
    };
    let a = run(601);
    let b = run(601);
    assert_eq!(a.0, b.0, "metrics text export must be byte-identical");
    assert_eq!(a.1, b.1, "metrics JSON export must be byte-identical");
    assert_eq!(a.2, b.2, "event JSONL export must be byte-identical");
    assert_eq!(a.3, b.3, "audit JSONL export must be byte-identical");
    // And the exports are non-trivial: real events and real histograms.
    assert!(a.2.lines().count() > 10);
    assert!(a.0.contains("transfer.seconds"));
}

#[test]
fn fault_recovery_exports_are_byte_identical_across_runs() {
    // Same seed + same fault plan => the whole recovery episode (stalls,
    // backoff pauses, failover, re-ranking) replays byte-for-byte.
    let run = |seed: u64| {
        let mut grid = paper_testbed(seed).build();
        grid.catalog_mut()
            .register_logical("file-f".parse().unwrap(), 256 * MB)
            .unwrap();
        for host in ["alpha4", "hit0", "lz02"] {
            grid.place_replica("file-f", canonical_host(host)).unwrap();
        }
        grid.warm_up(SimDuration::from_secs(180));
        let client = grid.host_id("alpha1").unwrap();
        let top = grid.score_candidates(client, "file-f").unwrap()[0].clone();
        grid.install_fault_plan(FaultPlan::new().host_blackout(
            grid.now() + SimDuration::from_secs(1),
            SimDuration::from_secs(10_000),
            grid.node_of(top.host),
        ));
        let recovery = RecoveryOptions::default()
            .with_retry(
                RetryPolicy::default()
                    .with_max_attempts(2)
                    .with_base_backoff(SimDuration::from_secs(1)),
            )
            .with_stall_timeout(SimDuration::from_secs(1));
        grid.fetch_with_recovery(
            client,
            "file-f",
            FetchOptions::default().with_parallelism(4),
            &recovery,
        )
        .expect("failover completes the fetch");
        let metrics = grid.metrics_snapshot();
        (
            metrics.render_text(),
            metrics.render_json(),
            grid.recorder().events_jsonl(),
            grid.audit().render_jsonl(),
        )
    };
    let a = run(611);
    let b = run(611);
    assert_eq!(a.0, b.0, "metrics text export must be byte-identical");
    assert_eq!(a.1, b.1, "metrics JSON export must be byte-identical");
    assert_eq!(a.2, b.2, "event JSONL export must be byte-identical");
    assert_eq!(a.3, b.3, "audit JSONL export must be byte-identical");
    // The exports actually contain the fault episode, not just the fetch.
    for kind in [
        "fault.start",
        "transfer.stall",
        "transfer.retry",
        "transfer.abandoned",
        "selection.failover",
    ] {
        assert!(a.2.contains(kind), "event export is missing {kind}");
    }
    assert!(
        a.3.contains("failover"),
        "audit export records the failover"
    );
}
