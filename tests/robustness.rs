//! Seed-robustness: the paper's qualitative findings must hold across
//! random seeds, not just the default one.

use datagrid::gridftp::transfer::{Protocol, TransferRequest};
use datagrid::prelude::*;

const MB: u64 = 1 << 20;
const SEEDS: [u64; 4] = [1, 1999, 20050905, u64::MAX / 3];

fn warmed(seed: u64, warm_s: u64) -> DataGrid {
    let mut grid = paper_testbed(seed).build();
    grid.warm_up(SimDuration::from_secs(warm_s));
    grid
}

#[test]
fn fig3_overhead_constant_across_seeds() {
    for seed in SEEDS {
        let run = |protocol| {
            let mut grid = warmed(seed, 30);
            let src = grid.host_id("alpha1").unwrap();
            let dst = grid.host_id("gridhit3").unwrap();
            grid.transfer_between(
                src,
                dst,
                TransferRequest::new(64 * MB).with_protocol(protocol),
            )
            .unwrap()
            .duration()
            .as_secs_f64()
        };
        let gap = run(Protocol::GridFtp) - run(Protocol::Ftp);
        assert!((0.0..2.0).contains(&gap), "seed {seed}: gap {gap}");
    }
}

#[test]
fn fig4_parallel_speedup_across_seeds() {
    for seed in SEEDS {
        let run = |streams: u32| {
            let mut grid = warmed(seed, 30);
            let src = grid.host_id("alpha2").unwrap();
            let dst = grid.host_id("lz04").unwrap();
            grid.transfer_between(
                src,
                dst,
                TransferRequest::new(32 * MB).with_parallelism(streams),
            )
            .unwrap()
            .duration()
            .as_secs_f64()
        };
        let s1 = run(1);
        let s8 = run(8);
        assert!(
            s8 < s1 * 0.4,
            "seed {seed}: 8 streams ({s8}) should be far faster than 1 ({s1})"
        );
    }
}

#[test]
fn table1_ordering_across_seeds() {
    for seed in SEEDS {
        let mut grid = paper_testbed(seed).build();
        grid.catalog_mut()
            .register_logical("file-a".parse().unwrap(), 32 * MB)
            .unwrap();
        for host in ["alpha4", "hit0", "lz02"] {
            grid.place_replica("file-a", canonical_host(host)).unwrap();
        }
        grid.warm_up(SimDuration::from_secs(180));
        let client = grid.host_id("alpha1").unwrap();
        let ranked = grid.score_candidates(client, "file-a").unwrap();
        let names: Vec<&str> = ranked.iter().map(|c| c.host_name.as_str()).collect();
        assert_eq!(
            names,
            vec!["alpha4", "gridhit0", "lz02"],
            "seed {seed}: ordering broke"
        );
    }
}

#[test]
fn failover_reaches_the_next_best_replica_across_seeds() {
    // The recovery ladder is not a lucky-seed artefact: whichever way the
    // background load falls, a dead top-ranked replica ends with the same
    // qualitative outcome — alpha4 abandoned, gridhit0 delivers.
    for seed in SEEDS {
        let mut grid = paper_testbed(seed).build();
        grid.catalog_mut()
            .register_logical("file-a".parse().unwrap(), 256 * MB)
            .unwrap();
        for host in ["alpha4", "hit0", "lz02"] {
            grid.place_replica("file-a", canonical_host(host)).unwrap();
        }
        grid.warm_up(SimDuration::from_secs(180));
        let client = grid.host_id("alpha1").unwrap();
        let alpha4 = grid.host_id("alpha4").unwrap();
        grid.install_fault_plan(FaultPlan::new().host_blackout(
            grid.now() + SimDuration::from_secs(1),
            SimDuration::from_secs(10_000),
            grid.node_of(alpha4),
        ));
        let recovery = RecoveryOptions::default()
            .with_retry(
                RetryPolicy::default()
                    .with_max_attempts(2)
                    .with_base_backoff(SimDuration::from_secs(1)),
            )
            .with_stall_timeout(SimDuration::from_secs(1));
        let rec = grid
            .fetch_with_recovery(
                client,
                "file-a",
                FetchOptions::default().with_parallelism(4),
                &recovery,
            )
            .unwrap_or_else(|e| panic!("seed {seed}: failover should succeed, got {e}"));
        assert_eq!(rec.failed_over, vec!["alpha4".to_string()], "seed {seed}");
        assert_eq!(
            rec.report.chosen_candidate().host_name,
            "gridhit0",
            "seed {seed}: failover should land on the next-ranked site"
        );
        assert_eq!(rec.report.transfer.payload_bytes, 256 * MB, "seed {seed}");
        assert!(
            rec.payload_moved >= 256 * MB,
            "seed {seed}: moved {} of {}",
            rec.payload_moved,
            256 * MB
        );
    }
}

#[test]
fn cost_model_beats_random_across_seeds() {
    for seed in [3u64, 77] {
        let build = || {
            let mut grid = paper_testbed(seed).build();
            grid.catalog_mut()
                .register_logical("file-r".parse().unwrap(), 32 * MB)
                .unwrap();
            for host in ["alpha4", "lz02"] {
                grid.place_replica("file-r", host).unwrap();
            }
            grid.warm_up(SimDuration::from_secs(120));
            grid
        };
        let trace = RequestTrace::poisson(
            &["gridhit1"],
            &["file-r"],
            1.0 / 100.0,
            SimDuration::from_secs(800),
            seed,
        );
        let cost = selection_quality(
            &mut build(),
            &trace,
            SelectionPolicy::CostModel,
            FetchOptions::default().with_parallelism(4),
        );
        let random = selection_quality(
            &mut build(),
            &trace,
            SelectionPolicy::Random,
            FetchOptions::default().with_parallelism(4),
        );
        assert!(
            cost.mean_duration_s <= random.mean_duration_s * 1.05,
            "seed {seed}: cost {:.1}s vs random {:.1}s",
            cost.mean_duration_s,
            random.mean_duration_s
        );
        assert!(cost.oracle_accuracy >= random.oracle_accuracy);
    }
}
