//! Satellite lock-down: the grid-scale replay is a pure function of the
//! seed. Same seed (and whatever `DATAGRID_JOBS` this process runs with)
//! must reproduce the obs event log and the `BENCH_grid.json` body
//! byte-for-byte; different seeds must actually change the schedule.

use datagrid::prelude::*;
use datagrid::testbed::gridscale::all_paper_hosts;
use datagrid::testbed::workload::grid_workload;
use proptest::prelude::*;

fn quick_cfg(files: usize) -> GridScaleConfig {
    GridScaleConfig {
        files,
        warm: SimDuration::from_secs(30),
        ..GridScaleConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Two sweeps from the same seed emit byte-identical reports *and*
    /// byte-identical observability exports (event JSONL, selection
    /// audit, metrics) for every cell.
    #[test]
    fn same_seed_byte_identical_report_and_events(
        seed in 0u64..1_000_000,
        clients in 2usize..6,
        files in 4usize..10,
    ) {
        let cfg = quick_cfg(files);
        let counts = [clients, clients + 3];
        let a = run_grid_scale(seed, &counts, &cfg);
        let b = run_grid_scale(seed, &counts, &cfg);
        let ja = GridScaleReport::from_runs(seed, &a).render_json();
        let jb = GridScaleReport::from_runs(seed, &b).render_json();
        prop_assert_eq!(ja, jb);
        prop_assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            prop_assert_eq!(&ra.obs.events_jsonl, &rb.obs.events_jsonl);
            prop_assert_eq!(&ra.obs.audit_jsonl, &rb.obs.audit_jsonl);
            prop_assert_eq!(&ra.obs.metrics_json, &rb.obs.metrics_json);
            // The log is a real replay record, not an empty file.
            prop_assert!(ra.obs.events_jsonl.contains("replay.start"));
            prop_assert!(ra.obs.events_jsonl.contains("replay.end"));
        }
    }

    /// Cohort batching is unobservable from the grid: the batched and
    /// per-event engines replay the same workload into byte-identical
    /// `BENCH_grid.json` bodies (modulo the solver-pass counter lines the
    /// batching exists to change) and byte-identical obs event logs,
    /// selection audits, and metrics (modulo the same counters).
    #[test]
    fn batching_toggle_is_publicly_unobservable(
        seed in 0u64..1_000_000,
        clients in 2usize..7,
        files in 4usize..10,
    ) {
        let cfg = quick_cfg(files);
        let per_event = GridScaleConfig { batching: false, ..cfg };
        let a = run_grid_scale(seed, &[clients], &cfg);
        let b = run_grid_scale(seed, &[clients], &per_event);
        // Only the solver-pass bookkeeping may differ.
        let solver_line = |l: &&str| {
            !(l.contains("solve") || l.contains("cohort"))
        };
        let ja = GridScaleReport::from_runs(seed, &a).render_json();
        let jb = GridScaleReport::from_runs(seed, &b).render_json();
        prop_assert_eq!(
            ja.lines().filter(solver_line).collect::<Vec<_>>(),
            jb.lines().filter(solver_line).collect::<Vec<_>>()
        );
        for (ra, rb) in a.iter().zip(&b) {
            prop_assert_eq!(&ra.obs.events_jsonl, &rb.obs.events_jsonl);
            prop_assert_eq!(&ra.obs.audit_jsonl, &rb.obs.audit_jsonl);
            // The metrics export is a single JSON line; mask it at the
            // field level instead.
            let fields = |json: &str| {
                json.split(',')
                    .filter(|f| !(f.contains("solve") || f.contains("cohort")))
                    .map(str::to_string)
                    .collect::<Vec<_>>()
            };
            prop_assert_eq!(fields(&ra.obs.metrics_json), fields(&rb.obs.metrics_json));
            // The per-event run must actually have taken the other path.
            prop_assert!(rb.obs.metrics_json.contains("\"simnet.solves_avoided\":0"));
        }
    }

    /// Different seeds produce genuinely different workload schedules
    /// (arrival times diverge) and different reports.
    #[test]
    fn different_seeds_different_schedules(
        seed in 0u64..1_000_000,
        clients in 3usize..8,
    ) {
        let hosts = all_paper_hosts();
        let spec = GridWorkloadSpec { clients, ..GridWorkloadSpec::default() };
        let wa = grid_workload(&spec, &hosts, seed);
        let wb = grid_workload(&spec, &hosts, seed ^ 0xdead_beef);
        let at = |w: &GridWorkload| -> Vec<SimTime> {
            w.trace.requests().iter().map(|r| r.at).collect::<Vec<_>>()
        };
        prop_assert_ne!(at(&wa), at(&wb), "schedules must diverge across seeds");

        let cfg = quick_cfg(6);
        let ja = GridScaleReport::from_runs(seed, &run_grid_scale(seed, &[clients], &cfg))
            .render_json();
        let jb = GridScaleReport::from_runs(
            seed ^ 0xdead_beef,
            &run_grid_scale(seed ^ 0xdead_beef, &[clients], &cfg),
        )
        .render_json();
        prop_assert_ne!(ja, jb, "reports must diverge across seeds");
    }
}
