//! Integration coverage for the grid-wide observability layer: the
//! selection audit of the paper's Table 1 scenario, metric exports and the
//! event-bus bridge.

use datagrid::obs::{EventBus, JsonlSink};
use datagrid::prelude::*;

const MB: u64 = 1 << 20;

/// The Table 1 scenario: client `alpha1` fetches `file-a` (1024 MB in the
/// paper, smaller here for test speed) replicated on `alpha4`, `hit0` and
/// `lz02`, with the paper's weights 0.8/0.1/0.1.
fn table1_grid(seed: u64) -> DataGrid {
    let mut grid = paper_testbed(seed).build();
    grid.catalog_mut()
        .register_logical("file-a".parse().unwrap(), 64 * MB)
        .unwrap();
    for host in ["alpha4", "hit0", "lz02"] {
        grid.place_replica("file-a", canonical_host(host)).unwrap();
    }
    grid.warm_up(SimDuration::from_secs(300));
    grid
}

#[test]
fn table1_scenario_records_a_full_selection_audit() {
    let mut grid = table1_grid(905);
    let client = grid.host_id("alpha1").unwrap();
    let report = grid.fetch(client, "file-a").unwrap();

    let audit = grid.audit();
    assert_eq!(audit.len(), 1);
    let decision = audit.last().unwrap();
    assert_eq!(decision.lfn, "file-a");
    assert_eq!(decision.client, "alpha1");
    assert_eq!(decision.policy, "cost-model");
    assert_eq!(decision.weights, (0.8, 0.1, 0.1));

    // All three candidates with their full factor breakdown, ranked
    // best-first: alpha4 (same cluster) > gridhit0 (fast WAN) > lz02
    // (slow lossy WAN) — the paper's Table 1 ordering.
    assert_eq!(decision.candidates.len(), 3);
    assert_eq!(decision.hosts_by_rank(), vec!["alpha4", "gridhit0", "lz02"]);
    assert_eq!(decision.winner, "alpha4");
    assert_eq!(decision.winner, report.chosen_candidate().host_name);
    for candidate in &decision.candidates {
        assert!(
            candidate.bw_p > 0.0 && candidate.bw_p <= 1.0,
            "BW_P out of range for {}",
            candidate.host
        );
        assert!((0.0..=1.0).contains(&candidate.cpu_p));
        assert!((0.0..=1.0).contains(&candidate.io_p));
        let recomputed = candidate.weighted_bw + candidate.weighted_cpu + candidate.weighted_io;
        assert!(
            (recomputed - candidate.score).abs() < 1e-9,
            "weighted components must sum to the score for {}",
            candidate.host
        );
        assert!((candidate.weighted_bw - 0.8 * candidate.bw_p).abs() < 1e-12);
        assert!((candidate.weighted_cpu - 0.1 * candidate.cpu_p).abs() < 1e-12);
        assert!((candidate.weighted_io - 0.1 * candidate.io_p).abs() < 1e-12);
    }

    // The winner's measured transfer time is attached automatically.
    let winner = decision.winner_audit().unwrap();
    assert!(winner.measured_secs.unwrap() > 0.0);

    // Both renders carry the decision.
    assert!(audit.render_text().contains("alpha4"));
    let jsonl = audit.render_jsonl();
    assert!(jsonl.contains("\"winner\":\"alpha4\""));
    assert!(jsonl.contains("\"bw_p\""));
}

#[test]
fn counterfactual_times_complete_the_rank_agreement() {
    let mut grid = table1_grid(906);
    let client = grid.host_id("alpha1").unwrap();
    let candidates = grid.score_candidates(client, "file-a").unwrap();
    grid.fetch(client, "file-a").unwrap();

    // Measure the two losing candidates on clones, as table1 does.
    let mut measured = Vec::new();
    for c in &candidates {
        let mut probe = grid.clone();
        let report = probe
            .fetch_from(client, "file-a", &c.host_name, FetchOptions::default())
            .unwrap();
        measured.push((
            c.host_name.clone(),
            report.transfer.duration().as_secs_f64(),
        ));
    }
    let decision = grid.recorder_mut().audit_mut().last_mut().unwrap();
    for (host, secs) in &measured {
        decision.attach_measured(host, *secs);
    }
    assert_eq!(
        decision.rank_agreement(),
        Some(1.0),
        "score order must match measured-time order in the Table 1 scenario"
    );
}

#[test]
fn metrics_export_has_latency_histograms_in_text_and_json() {
    let mut grid = table1_grid(907);
    let client = grid.host_id("alpha1").unwrap();
    grid.fetch(client, "file-a").unwrap();

    let metrics = grid.metrics_snapshot();
    let text = metrics.render_text();
    let json = metrics.render_json();

    // Per-transfer latency histogram, in both renders.
    let hist = metrics.histogram("transfer.seconds").unwrap();
    assert_eq!(hist.count(), 1);
    assert!(text.contains("transfer.seconds count 1"));
    assert!(text.contains("transfer.seconds le +inf 1"));
    assert!(json.contains("\"transfer.seconds\":{\"bounds\":"));

    // Selection + monitoring + merged subsystem counters.
    assert!(text.contains("selection.decisions 1"));
    assert!(metrics.counter("monitor.ticks") >= 29);
    assert!(metrics.counter("nws.probes_completed") > 0);
    assert!(metrics.counter("catalog.lookups") >= 2);
    assert!(metrics.counter("simnet.flows_completed") > 0);
    assert!(metrics.histogram("selection.score").is_some());
    assert!(metrics.histogram("transfer.phase_seconds.data").is_some());
}

#[test]
fn recorder_history_replays_into_a_jsonl_sink() {
    let mut grid = table1_grid(908);
    let client = grid.host_id("alpha1").unwrap();
    grid.fetch(client, "file-a").unwrap();

    let mut bus = EventBus::new();
    bus.subscribe(JsonlSink::new(Vec::new()));
    grid.recorder().replay_into(&mut bus);
    // The sink is owned by the bus; compare through the recorder's own
    // JSONL render, which must match what streamed through the bus.
    let direct = grid.recorder().events_jsonl();
    assert_eq!(direct.lines().count(), grid.recorder().events().len());
    assert!(
        direct.contains("\"component\":\"gridftp\"") || direct.contains("\"kind\":\"span.open\"")
    );
}
