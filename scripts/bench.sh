#!/usr/bin/env bash
# Runs the simulation-core scale benchmark and validates its report.
#
#   scripts/bench.sh [out.json]
#
# Builds the bench crate in release mode, runs the `scale` binary (full
# from-scratch solver baseline vs the incremental component solver, 1k+
# concurrent flows), writes the JSON report (default: BENCH_simnet.json at
# the repo root) and re-reads it with `scale --check` so a malformed
# report fails loudly. The check validates shape only — it is a smoke
# test, not a performance gate.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_simnet.json}"

cargo build --release -p datagrid-bench --bin scale
./target/release/scale --out "${OUT}"
./target/release/scale --check "${OUT}"
