#!/usr/bin/env bash
# Runs the differential fuzz smoke: a fixed-seed corpus of random
# scenarios through the paired engine configurations, plus the harness's
# own self-test and determinism suite.
#
#   scripts/fuzz_smoke.sh [count]
#
# Builds the bench crate in release mode and runs the `fuzz` binary three
# ways:
#
#   1. the corpus with `--deny-divergence` — every scenario's pairs
#      (batching on/off, validation on/off, incremental vs full solver,
#      static vs contention-aware selection) must agree under their
#      oracles,
#   2. a smaller corpus with `--break-oracle` — the harness sabotages its
#      own baseline and must catch, shrink and report the divergence
#      (a tester that cannot fail gates nothing),
#   3. the fuzz determinism property tests — same seed ⇒ byte-identical
#      worlds, divergence reports and shrunk reproducers.
#
# Fixed seed, so the whole run is reproducible; any divergence prints a
# `fuzz --replay <code>` token that re-runs the scenario byte-identically.
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${1:-200}"
SEED="${DATAGRID_FUZZ_SEED:-20050905}"

cargo build --release -p datagrid-bench --bin fuzz

./target/release/fuzz --count "${COUNT}" --seed "${SEED}" --deny-divergence

./target/release/fuzz --count 25 --seed "${SEED}" --break-oracle

cargo test --release -p datagrid-testbed --test fuzz_determinism
