#!/usr/bin/env bash
# Runs the continuous-telemetry smoke: the `profile` benchmark at reduced
# client counts plus the timeline determinism property test.
#
#   scripts/profile_smoke.sh [out.json]
#
# Builds the bench crate in release mode, runs the `profile` binary (grid
# replay with the health timeline and phase profiler attached), writes
# `BENCH_profile.json` (default: at the repo root), re-reads it with
# `profile --check` so a malformed report fails loudly, and gates the
# hot-path work counters against `ci/profile_budget.json` with
# `profile --check-budget` (solver passes per decision, batching savings,
# zero steady-state dispatch allocations — deterministic counters, not
# timings). Then re-runs the sweep to assert the default-build report is
# byte-identical (the determinism contract: no wall-clock data leaks into
# the default output), runs the timeline determinism property test, and
# the obs suite with `prof-timing` enabled, proving the timed build still
# compiles and its counts stay deterministic.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_profile.json}"

# CI-sized sweep: enough concurrency to populate every phase and several
# timeline windows, small enough to stay in seconds. The default
# 256/1024/4096 sweep runs locally.
export DATAGRID_PROFILE_CLIENTS="${DATAGRID_PROFILE_CLIENTS:-16,64}"

cargo build --release -p datagrid-bench --bin profile
./target/release/profile --out "${OUT}"
./target/release/profile --check "${OUT}"
./target/release/profile --check-budget ci/profile_budget.json "${OUT}"

# Same seed, second run: the default build's report must not change by a
# single byte.
./target/release/profile --out "${OUT}.rerun" >/dev/null
cmp "${OUT}" "${OUT}.rerun"
rm -f "${OUT}.rerun"
echo "profile report is byte-identical across same-seed runs"

cargo test --release --test timeline_determinism
cargo test -q -p datagrid-obs --features prof-timing
