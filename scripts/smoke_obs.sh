#!/usr/bin/env bash
# CI smoke: run the Table 1 reproducers (healthy and fault-injected) with
# the observability dump enabled, then assert the exports are non-empty
# and machine-parseable. Catches "the bin runs but the dumps rotted"
# regressions that unit tests cannot see.
set -euo pipefail
cd "$(dirname "$0")/.."

OBS_DIR="${1:-target/smoke-obs}"
rm -rf "$OBS_DIR"

echo "==> smoke: table1 + table1_fault with DATAGRID_OBS_DIR=$OBS_DIR"
DATAGRID_OBS_DIR="$OBS_DIR" cargo run -q --release -p datagrid-bench --bin table1
DATAGRID_OBS_DIR="$OBS_DIR" cargo run -q --release -p datagrid-bench --bin table1_fault

check_nonempty() {
  [ -s "$1" ] || { echo "smoke FAIL: $1 is missing or empty" >&2; exit 1; }
}

check_jsonl() {
  check_nonempty "$1"
  python3 - "$1" <<'PY'
import json, sys
path = sys.argv[1]
with open(path) as fh:
    lines = [line for line in fh if line.strip()]
if not lines:
    sys.exit(f"smoke FAIL: {path} has no records")
for n, line in enumerate(lines, 1):
    try:
        json.loads(line)
    except ValueError as err:
        sys.exit(f"smoke FAIL: {path}:{n} is not JSON: {err}")
print(f"    {path}: {len(lines)} records OK")
PY
}

for label in table1 table1_fault; do
  echo "==> smoke: validating $OBS_DIR/$label.*"
  check_nonempty "$OBS_DIR/$label.metrics.txt"
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$OBS_DIR/$label.metrics.json"
  check_jsonl "$OBS_DIR/$label.events.jsonl"
  check_jsonl "$OBS_DIR/$label.audit.jsonl"
done

# The fault run must have actually recorded the recovery episode.
grep -q '"kind":"selection.failover"' "$OBS_DIR/table1_fault.events.jsonl" \
  || { echo "smoke FAIL: fault run recorded no failover event" >&2; exit 1; }

echo "==> smoke OK"
