#!/usr/bin/env bash
# Runs the grid-level scale smoke: the multi-client replay benchmark at
# reduced client counts plus the workload determinism property test.
#
#   scripts/grid_smoke.sh [out.json]
#
# Builds the bench crate in release mode, runs the `grid_scale` binary
# (deterministic multi-client fetch replay, static and contention-aware
# selection side by side), writes the JSON report (default:
# BENCH_grid.json at the repo root) and re-reads it with
# `grid_scale --check` so a malformed report fails loudly. Then runs the
# determinism property test that pins same-seed ⇒ byte-identical reports
# and obs exports. Shape and determinism only — not a performance gate.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_grid.json}"

# CI-sized sweep: big enough to exercise real contention, small enough
# to stay in seconds. The default 16..16384 sweep runs locally.
export DATAGRID_GRID_CLIENTS="${DATAGRID_GRID_CLIENTS:-16,64,256}"

cargo build --release -p datagrid-bench --bin grid_scale
./target/release/grid_scale --out "${OUT}"
./target/release/grid_scale --check "${OUT}"

cargo test --release --test workload_determinism
