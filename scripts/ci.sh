#!/usr/bin/env bash
# The whole CI gate, runnable locally. Operates on the workspace's default
# members (crates/bench is excluded there; build it explicitly with
# `cargo build -p datagrid-bench` when working on the reproducers).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy -- -D warnings

echo "==> ci OK"
