#!/usr/bin/env bash
# The whole CI gate, runnable locally. Operates on the workspace's default
# members plus an explicit `crates/bench` build (bench is excluded from the
# default members so plain `cargo test` stays fast).
#
# Each step runs through `step`, which echoes its wall-clock time so slow
# stages are visible at a glance both locally and in the Actions log.
# Run a single step with e.g. `scripts/ci.sh test`; the Actions `analysis`
# job runs `scripts/ci.sh lint clippy validate`.
set -euo pipefail
cd "$(dirname "$0")/.."

step() {
  local name="$1"
  shift
  echo "==> ${name}: $*"
  local t0
  t0=$(date +%s)
  "$@"
  echo "==> ${name} OK ($(($(date +%s) - t0)) s)"
}

step_build() { step build cargo build --release; }
step_bench_build() { step bench-build cargo build -p datagrid-bench; }
step_test() { step test cargo test -q; }
step_fmt() { step fmt cargo fmt --check; }
step_clippy() { step clippy cargo clippy --all-targets -- -D warnings; }
# Token-level static analysis: the v1 pattern rules plus hot-path
# allocation tracking (`// lint: hot-path` roots + call-graph
# reachability), determinism rules (hash containers on export paths),
# float comparisons and narrowing casts. New findings fail against the
# ratcheting fingerprint baseline in ci/lint_baseline.json (which may
# only shrink); site/file suppressions need an audited reason. The JSON
# findings artifact lands in target/lint_findings.json for upload.
step_lint() { step lint cargo run -q -p datagrid-lint -- --deny --json target/lint_findings.json; }
# Max-min certificate enforcement in release mode: the `validate` feature
# keeps the solver's per-settle certificate check on where
# debug_assertions would normally turn it off, then re-runs the simnet
# suite (including the certificate property tests) against it.
step_validate() { step validate cargo test -q --release -p datagrid-simnet --features validate; }
# Smoke, not a perf gate: the scale benchmark must run and emit a report
# whose key throughput fields parse (scripts/bench.sh re-reads it with
# `scale --check`).
step_bench_smoke() { step bench-smoke scripts/bench.sh target/BENCH_simnet.json; }
# Continuous-telemetry smoke: the profile benchmark must emit a valid
# BENCH_profile.json that is byte-identical across same-seed runs, and
# the prof-timing build must stay green (scripts/profile_smoke.sh).
step_profile_smoke() { step profile-smoke scripts/profile_smoke.sh target/BENCH_profile.json; }
# Differential fuzz smoke: a fixed-seed corpus of random scenarios must
# agree across paired engine configurations, and the harness must catch
# its own sabotage (scripts/fuzz_smoke.sh).
step_fuzz_smoke() { step fuzz-smoke scripts/fuzz_smoke.sh; }

if [ $# -gt 0 ]; then
  for sel in "$@"; do
    "step_${sel//-/_}"
  done
else
  step_build
  step_bench_build
  step_test
  step_fmt
  step_clippy
  step_lint
  step_bench_smoke
  step_profile_smoke
  step_fuzz_smoke
fi

echo "==> ci OK"
