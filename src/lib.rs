//! # datagrid
//!
//! A full reproduction of *"Performance Analysis of Applying Replica
//! Selection Technology for Data Grid Environments"* (Yang, Chen, Li, Hsu —
//! PaCT 2005) as a Rust library.
//!
//! The paper builds a Data Grid out of three Linux PC clusters, measures
//! FTP vs. GridFTP and GridFTP parallel-stream transfers, and proposes a
//! weighted **cost model** over network bandwidth, CPU idle and I/O idle to
//! pick the best replica. This crate family replaces the physical testbed
//! with a deterministic discrete-event simulation and implements the whole
//! software stack the paper relies on:
//!
//! | layer | crate |
//! |---|---|
//! | network simulation (fluid flows, TCP, background traffic) | [`simnet`] |
//! | host load, sysstat, NWS forecasting, MDS | [`sysmon`] |
//! | FTP / GridFTP protocol model | [`gridftp`] |
//! | replica catalog and management | [`catalog`] |
//! | structured events, metrics, selection audit | [`obs`] |
//! | cost model, selection policies, DataGrid orchestrator | [`core`] |
//! | the paper's testbed, workloads, experiment harness | [`testbed`] |
//!
//! ## Quickstart
//!
//! ```
//! use datagrid::prelude::*;
//!
//! // Build the paper's three-cluster testbed and fetch a replicated file.
//! let mut grid = paper_testbed(42).build();
//! grid.catalog_mut().register_logical("file-a".parse()?, 64 << 20)?;
//! for host in ["alpha4", "hit0", "lz02"] {
//!     grid.place_replica("file-a", canonical_host(host))?;
//! }
//! grid.warm_up(SimDuration::from_secs(60));
//! let client = grid.host_id("alpha1").unwrap();
//! let report = grid.fetch(client, "file-a")?;
//! assert!(report.transfer.duration().as_secs_f64() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use datagrid_catalog as catalog;
pub use datagrid_core as core;
pub use datagrid_gridftp as gridftp;
pub use datagrid_obs as obs;
pub use datagrid_simnet as simnet;
pub use datagrid_sysmon as sysmon;
pub use datagrid_testbed as testbed;

/// One-stop imports for applications.
pub mod prelude {
    pub use datagrid_catalog::prelude::*;
    pub use datagrid_core::prelude::*;
    pub use datagrid_gridftp::prelude::*;
    pub use datagrid_simnet::prelude::*;
    pub use datagrid_sysmon::prelude::*;
    pub use datagrid_testbed::prelude::*;
}
